(** Continuous per-rule / per-table profiler for a live engine.

    Rule self-times come from [fire_start]/[fire_stop] brackets around
    each firing (striped plain-int counters, per-domain frame stacks so
    nested immediate firings are excluded from a parent's self time);
    per-table put/query rates and Gamma sizes are folded in for free at
    each step barrier from the engine's existing deterministic
    counters.  [step_barrier] turns the deltas into exponentially
    decayed per-step aggregates and also folds scheduler utilization
    and GC/allocation lanes.

    {b Determinism.}  Everything this module produces is wall-clock
    derived and therefore differs run to run; it never feeds back into
    evaluation order.  The deterministic engine counters it reads stay
    bit-identical whether or not a profiler is attached.  Striped
    hot-path counters are plain ints: cross-domain stripe collisions
    can drop an update — a documented property of the monitoring lane,
    in exchange for an atomic-free hot path. *)

type t

type sched_totals = {
  sc_tasks : int;
  sc_steals : int;
  sc_parks : int;
  sc_idle_ns : int;
}
(** Cumulative scheduler counters, mirroring [Jstar_sched.Pool.stats]
    (the record is duplicated here because the dependency arrow points
    sched → obs). *)

type shard_totals = {
  sh_occupancy : int array;  (** per-shard pending tuples at the barrier *)
  sh_backlog : int array;  (** per-shard queued mailbox messages *)
  sh_msgs : int;  (** cumulative mailbox messages posted *)
  sh_msgs_cross : int;  (** of those, cross-shard *)
  sh_tuples : int;  (** cumulative tuples shipped in messages *)
  sh_tuples_cross : int;
}
(** Cumulative sharded-execution counters (mirroring the engine's
    [Shard] accessors — the dependency arrow points core → obs). *)

val create :
  ?stripes:int ->
  ?decay:float ->
  ?sample:int ->
  ?workers:int ->
  rules:string array ->
  tables:string array ->
  unit ->
  t
(** [create ~rules ~tables ()] sizes the profiler for rule ids
    [0 .. Array.length rules - 1] and likewise for tables.  [stripes]
    (default 8, rounded up to a power of two) bounds hot-path
    contention; [decay] (default 0.98) is the per-step EMA retention;
    [sample] (default 1 = time everything) times one in [sample]
    firings, scaling self-times back up at read time; [workers] is the
    pool width used for utilization. *)

(** {1 Hot path} *)

val fire_start : t -> int
(** Open a firing frame; returns the start timestamp, or [0] when this
    firing is sampled out (then [fire_stop] only counts it). *)

val fire_stop : t -> rule:int -> ?fires:int -> int -> unit
(** [fire_stop t ~rule ~fires t0] closes the frame opened by
    [fire_start]: credits [fires] firings (default 1 — batched chunks
    pass the chunk width) and, when [t0 <> 0], the bracket's wall time
    minus nested timed firings to [rule]'s self time. *)

(** {1 Barrier fold} *)

val step_barrier :
  t ->
  puts:int array ->
  queries:int array ->
  gamma:int array ->
  ?sched:sched_totals ->
  ?shards:shard_totals ->
  unit ->
  unit
(** Fold one step: [puts]/[queries] are cumulative per-table counters
    (indexed like [tables]), [gamma] current store sizes, [sched]
    cumulative pool counters, [shards] cumulative sharded-execution
    counters plus occupancy/backlog snapshots.  Called once per step
    from the engine's barrier; single-threaded. *)

(** {1 Snapshots} *)

type rule_row = {
  pr_id : int;
  pr_name : string;
  pr_fires : int;
  pr_self_s : float;  (** cumulative self seconds, sampling-scaled *)
  pr_ema_self_s : float;  (** decayed self seconds per step *)
}

type table_row = {
  pt_name : string;
  pt_puts : int;
  pt_queries : int;
  pt_gamma : int;
  pt_ema_puts : float;
  pt_ema_queries : float;
}

type sched_row = {
  ps_tasks : int;
  ps_steals : int;
  ps_parks : int;
  ps_idle_s : float;
  ps_utilization : float;  (** decayed busy fraction, 0..1 *)
}

type gc_row = {
  pg_alloc_words : float;
  pg_ema_alloc_words : float;
  pg_minor : int;
  pg_major : int;
}

type shard_row = {
  psh_count : int;
  psh_occupancy : int array;
  psh_backlog : int array;
  psh_msgs : int;
  psh_msgs_cross : int;
  psh_tuples : int;
  psh_tuples_cross : int;
  psh_ema_msgs : float;  (** decayed mailbox messages per step *)
  psh_ema_tuples : float;  (** decayed shipped tuples per step *)
}

val steps : t -> int
val rules : t -> rule_row array
val tables : t -> table_row array

val top_rules : ?k:int -> t -> rule_row list
(** Rules that fired at least once, by decayed self time (descending;
    fires then rule id break ties deterministically), first [k]
    (default 10). *)

val sched : t -> sched_row option
(** [None] until a barrier has folded scheduler totals. *)

val shards : t -> shard_row option
(** [None] until a barrier has folded sharded-execution totals (i.e.
    always [None] when [Config.shards = 0]). *)

val gc : t -> gc_row
val utilization : t -> float option

val to_json : ?k:int -> t -> Json.t
(** The [/profile] payload: steps, top-[k] rules, tables, GC and (when
    available) scheduler lanes; carries ["deterministic": false]. *)
