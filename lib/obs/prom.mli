(** Prometheus text exposition (format 0.0.4) of a {!Metrics} registry.

    Dotted registry names with embedded table names become labeled
    families ([table.Row.puts] → [jstar_table_puts{table="Row"}]);
    everything else is sanitized into a flat name.  Histograms render
    as cumulative [_bucket{le="..."}] series over the registry's
    power-of-two bounds, a [+Inf] lane, [_sum] and [_count].

    Reading the registry concurrently with a running engine is safe;
    timing-derived series are non-deterministic monitoring lanes (see
    DESIGN.md §12) while deterministic counters render bit-identically
    across runs. *)

val render : ?namespace:string -> Metrics.t -> string
(** Render the whole registry; [namespace] (default ["jstar"]) prefixes
    every family name. *)

(** {2 Exposed for tests} *)

val sanitize_name : string -> string
(** Map to the metric-name alphabet [[a-zA-Z0-9_:]]; a leading digit is
    prefixed with ['_']. *)

val escape_label : string -> string
(** Escape backslash, double-quote and newline for a quoted label
    value. *)
