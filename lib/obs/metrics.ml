(* The metrics registry: a named collection of counters (monotonic
   callbacks), gauges (point-in-time callbacks) and histograms
   (explicitly observed distributions), snapshotable between session
   drains.

   Counters and gauges are pull-based — registering one costs a list
   cell and reading happens only at snapshot time, so instrumented
   subsystems (Table_stats stripes, Delta occupancy, store sizes) pay
   nothing between snapshots.  Histograms are push-based and sized for
   concurrent observation: power-of-two buckets with atomic counts, and
   sum/max kept in fixed-point micro-units so they can be maintained
   with fetch-and-add/CAS instead of a lock around a float. *)

type value = Int of int | Float of float

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%.6g" f

(* -- histograms ------------------------------------------------------ *)

let hist_buckets = 64

(* Bucket [b] holds values in (2^(b-33), 2^(b-32)]: frexp exponents
   shifted so everything from sub-nanosecond latencies to billions
   lands inside the array. *)
let bucket_of v =
  if v <= 0.0 then 0
  else
    let _, e = Float.frexp v in
    min (hist_buckets - 1) (max 0 (e + 32))

let bucket_upper b = Float.ldexp 1.0 (b - 32)

type histogram = {
  h_counts : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum_micro : int Atomic.t; (* sum of observations, in 1e-6 units *)
  h_max_micro : int Atomic.t;
}

let observe h v =
  Atomic.incr h.h_count;
  Atomic.incr h.h_counts.(bucket_of v);
  let micro = int_of_float (v *. 1e6) in
  ignore (Atomic.fetch_and_add h.h_sum_micro micro);
  let rec bump () =
    let m = Atomic.get h.h_max_micro in
    if micro > m && not (Atomic.compare_and_set h.h_max_micro m micro) then
      bump ()
  in
  bump ()

let hist_count h = Atomic.get h.h_count
let hist_sum h = float_of_int (Atomic.get h.h_sum_micro) *. 1e-6
let hist_max h = float_of_int (Atomic.get h.h_max_micro) *. 1e-6

let hist_mean h =
  let n = hist_count h in
  if n = 0 then 0.0 else hist_sum h /. float_of_int n

(* Quantile estimate: the upper bound of the bucket where the q-th
   observation falls — exact to within one power of two. *)
let hist_quantile h q =
  let n = hist_count h in
  if n = 0 then 0.0
  else begin
    let target = int_of_float (Float.of_int n *. q) + 1 in
    let target = min n target in
    let acc = ref 0 and found = ref 0.0 and hit = ref false in
    for b = 0 to hist_buckets - 1 do
      if not !hit then begin
        acc := !acc + Atomic.get h.h_counts.(b);
        if !acc >= target then begin
          hit := true;
          found := bucket_upper b
        end
      end
    done;
    !found
  end

(* -- registry -------------------------------------------------------- *)

type source =
  | Counter of (unit -> int)
  | Gauge of (unit -> value)
  | Hist of histogram

type t = {
  mutable sources : (string * source) list; (* newest first *)
  mutex : Mutex.t;
}

let create () = { sources = []; mutex = Mutex.create () }

let add_source t name src =
  Mutex.lock t.mutex;
  t.sources <- (name, src) :: t.sources;
  Mutex.unlock t.mutex

let register_counter t ~name read = add_source t name (Counter read)
let register_gauge t ~name read = add_source t name (Gauge read)

let histogram t ~name =
  let h =
    {
      h_counts = Array.init hist_buckets (fun _ -> Atomic.make 0);
      h_count = Atomic.make 0;
      h_sum_micro = Atomic.make 0;
      h_max_micro = Atomic.make 0;
    }
  in
  add_source t name (Hist h);
  h

(* -- snapshots ------------------------------------------------------- *)

type row = {
  name : string;
  kind : string; (* "counter" | "gauge" | "histogram" *)
  fields : (string * value) list;
}

let row_of (name, src) =
  match src with
  | Counter read -> { name; kind = "counter"; fields = [ ("value", Int (read ())) ] }
  | Gauge read -> { name; kind = "gauge"; fields = [ ("value", read ()) ] }
  | Hist h ->
      {
        name;
        kind = "histogram";
        fields =
          [
            ("count", Int (hist_count h));
            ("sum", Float (hist_sum h));
            ("mean", Float (hist_mean h));
            ("p50", Float (hist_quantile h 0.50));
            ("p90", Float (hist_quantile h 0.90));
            ("p99", Float (hist_quantile h 0.99));
            ("max", Float (hist_max h));
          ];
      }

let snapshot t =
  Mutex.lock t.mutex;
  let srcs = List.rev t.sources in
  Mutex.unlock t.mutex;
  List.map row_of srcs

(* Read one source by name, as a float: the alert evaluator's entry
   point.  A single assoc lookup plus one pull — never a full snapshot,
   whose gauge reads can be as expensive as a Gamma rescan.  Histograms
   read as their observation count (alert on volume, not shape). *)
let read t name =
  Mutex.lock t.mutex;
  let src = List.assoc_opt name t.sources in
  Mutex.unlock t.mutex;
  match src with
  | None -> None
  | Some (Counter f) -> Some (float_of_int (f ()))
  | Some (Gauge f) -> (
      match f () with Int i -> Some (float_of_int i) | Float x -> Some x)
  | Some (Hist h) -> Some (float_of_int (hist_count h))

(* -- structured export ----------------------------------------------- *)

type exported =
  | X_counter of int
  | X_gauge of value
  | X_hist of {
      x_count : int;
      x_sum : float;
      x_buckets : (float * int) list; (* (upper bound, cumulative count) *)
    }

(* Cumulative buckets in the Prometheus sense: each entry counts every
   observation ≤ its upper bound.  Empty leading/interior buckets are
   elided except when needed to keep the series cumulative (we keep
   only buckets whose count changed, which preserves the full
   distribution at minimal width).  Concurrent observers can race the
   per-bucket reads against [h_count]; the final count is clamped to
   the bucket total so the [+Inf] lane (x_count as reported here) never
   undercounts the buckets. *)
let hist_cumulative h =
  let acc = ref 0 and out = ref [] in
  for b = 0 to hist_buckets - 1 do
    let c = Atomic.get h.h_counts.(b) in
    if c > 0 then begin
      acc := !acc + c;
      out := (bucket_upper b, !acc) :: !out
    end
  done;
  (List.rev !out, !acc)

let export t =
  Mutex.lock t.mutex;
  let srcs = List.rev t.sources in
  Mutex.unlock t.mutex;
  List.map
    (fun (name, src) ->
      match src with
      | Counter read -> (name, X_counter (read ()))
      | Gauge read -> (name, X_gauge (read ()))
      | Hist h ->
          let buckets, in_buckets = hist_cumulative h in
          let count = max (hist_count h) in_buckets in
          (name, X_hist { x_count = count; x_sum = hist_sum h; x_buckets = buckets }))
    srcs

(* -- rendering ------------------------------------------------------- *)

let to_csv buf rows =
  Buffer.add_string buf "name,kind,field,value\n";
  List.iter
    (fun r ->
      List.iter
        (fun (field, v) ->
          Buffer.add_string buf r.name;
          Buffer.add_char buf ',';
          Buffer.add_string buf r.kind;
          Buffer.add_char buf ',';
          Buffer.add_string buf field;
          Buffer.add_char buf ',';
          (match v with
          | Int i -> Buffer.add_string buf (string_of_int i)
          | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f));
          Buffer.add_char buf '\n')
        r.fields)
    rows

let pp ppf rows =
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-34s %-9s %a@." r.name r.kind
        (Fmt.list ~sep:(Fmt.any "  ")
           (Fmt.pair ~sep:(Fmt.any "=") Fmt.string pp_value))
        r.fields)
    rows
