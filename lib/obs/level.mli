(** Tracing level, replacing the old [Config.trace : bool].  Ordered:
    [Spans] implies [Counters].

    - [Off]: zero overhead — hot paths take one branch and allocate
      nothing extra.
    - [Counters]: metrics registry live (histograms observed, gauges
      readable); no event rings.
    - [Spans]: everything, plus per-domain span rings for Chrome-trace
      export. *)

type t = Off | Counters | Spans

val counters_on : t -> bool
(** [Counters] or [Spans]. *)

val spans_on : t -> bool
(** [Spans] only. *)

val to_string : t -> string
val of_string : string -> t option
