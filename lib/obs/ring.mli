(** Fixed-capacity per-domain event ring: no locks, no allocation per
    event, a dropped counter once it wraps.  Single writer (the owning
    domain); read at quiescence. *)

type t

val create : capacity:int -> tid:int -> t
(** Capacity is rounded up to a power of two, minimum 2. *)

val tid : t -> int
val capacity : t -> int

val record : t -> kind:int -> ts:int -> dur:int -> arg:int -> unit
(** Four scalar stores and a cursor bump.  [dur = -1] marks an instant
    event; otherwise [dur] is the span length in ns.  Overwrites the
    oldest event when full. *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events overwritten by wrapping. *)

val iter : t -> (kind:int -> ts:int -> dur:int -> arg:int -> unit) -> unit
(** Oldest retained event first. *)
