(** Integer-nanosecond clock for span timestamps, anchored at process
    start.  Unboxed ([int]) so reading it adds no allocation pressure
    to instrumented hot paths. *)

val now_ns : unit -> int
(** Nanoseconds since the process loaded this library; non-negative. *)
