(* Validator for Chrome trace-event JSON, used by the test suite and
   the @trace-smoke alias.  Checks the schema subset the exporter
   promises: every event carries ph/pid/tid (plus ts and name for
   non-metadata events), and per (pid, tid) track the B/E duration
   events form a balanced, name-matched bracket sequence in file
   order. *)

type summary = {
  events : int;
  tracks : int;
  spans : int; (* balanced B/E pairs *)
  instants : int;
  flows : int; (* bound s/f flow pairs *)
  by_name : (string * int) list; (* event count per name, any phase *)
}

let count_name acc name =
  match List.assoc_opt name acc with
  | Some c -> (name, c + 1) :: List.remove_assoc name acc
  | None -> (name, 1) :: acc

let name_count summary name =
  match List.assoc_opt name summary.by_name with Some c -> c | None -> 0

let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* events =
    match Json.member "traceEvents" json with
    | Some ev -> (
        match Json.to_list_opt ev with
        | Some l -> Ok l
        | None -> Error "traceEvents is not an array")
    | None -> Error "missing traceEvents"
  in
  (* stacks: (pid, tid) -> open span names, newest first *)
  let stacks : (float * float, string list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let tracks : (float * float, unit) Hashtbl.t = Hashtbl.create 8 in
  let spans = ref 0 and instants = ref 0 and by_name = ref [] in
  (* flow halves bind by id: finishes must name a started flow *)
  let flow_starts : (float, unit) Hashtbl.t = Hashtbl.create 8 in
  let flows = ref 0 in
  let flow_finishes = ref [] in
  let rec check i = function
    | [] -> Ok ()
    | ev :: rest ->
        let err msg = Error (Printf.sprintf "event %d: %s" i msg) in
        let* ph =
          match Option.bind (Json.member "ph" ev) Json.to_string_opt with
          | Some ph -> Ok ph
          | None -> err "missing ph"
        in
        let* pid =
          match Option.bind (Json.member "pid" ev) Json.to_float_opt with
          | Some p -> Ok p
          | None -> err "missing pid"
        in
        let* tid =
          match Option.bind (Json.member "tid" ev) Json.to_float_opt with
          | Some t -> Ok t
          | None -> err "missing tid"
        in
        let name = Option.bind (Json.member "name" ev) Json.to_string_opt in
        let* () =
          if ph = "M" then Ok ()
          else begin
            match
              (name, Option.bind (Json.member "ts" ev) Json.to_float_opt)
            with
            | None, _ -> err "missing name"
            | _, None -> err "missing ts"
            | Some n, Some _ ->
                Hashtbl.replace tracks (pid, tid) ();
                by_name := count_name !by_name n;
                let stack =
                  match Hashtbl.find_opt stacks (pid, tid) with
                  | Some s -> s
                  | None ->
                      let s = ref [] in
                      Hashtbl.replace stacks (pid, tid) s;
                      s
                in
                (match ph with
                | "B" ->
                    stack := n :: !stack;
                    Ok ()
                | "E" -> (
                    match !stack with
                    | top :: tl when top = n ->
                        stack := tl;
                        incr spans;
                        Ok ()
                    | top :: _ ->
                        err
                          (Printf.sprintf "E %s does not match open B %s" n
                             top)
                    | [] -> err (Printf.sprintf "E %s with no open span" n))
                | "i" | "I" ->
                    incr instants;
                    Ok ()
                | "X" -> Ok ()
                | ("s" | "t" | "f") as ph -> (
                    match
                      Option.bind (Json.member "id" ev) Json.to_float_opt
                    with
                    | None -> err ("flow " ^ ph ^ " without id")
                    | Some id ->
                        (if ph = "s" then Hashtbl.replace flow_starts id ()
                         else if ph = "f" then
                           flow_finishes := (i, id) :: !flow_finishes);
                        Ok ())
                | other -> err ("unexpected phase " ^ other))
          end
        in
        check (i + 1) rest
  in
  let* () = check 0 events in
  let* () =
    List.fold_left
      (fun acc (i, id) ->
        let* () = acc in
        if Hashtbl.mem flow_starts id then begin
          incr flows;
          Ok ()
        end
        else Error (Printf.sprintf "event %d: flow finish id %g unbound" i id))
      (Ok ())
      (List.rev !flow_finishes)
  in
  let* () =
    Hashtbl.fold
      (fun (pid, tid) stack acc ->
        let* () = acc in
        match !stack with
        | [] -> Ok ()
        | open_spans ->
            Error
              (Printf.sprintf "track (%g,%g): %d unclosed span(s), top %s"
                 pid tid (List.length open_spans) (List.hd open_spans)))
      stacks (Ok ())
  in
  Ok
    {
      events = List.length events;
      tracks = Hashtbl.length tracks;
      spans = !spans;
      instants = !instants;
      flows = !flows;
      by_name = !by_name;
    }

let validate_string s =
  match Json.of_string s with
  | Error msg -> Error ("json: " ^ msg)
  | Ok json -> validate json
