(** Event kinds recorded in span rings.  The builtin set covers the
    engine's step machinery and the pool's scheduling events; tracers
    mint further kinds for user-registered names
    ({!Tracer.register_kind}). *)

type t = private int

val step : t  (** one engine step (minimal equivalence class) *)

val extract : t  (** Delta extract-min-class *)

val gamma_insert : t  (** Phase A: class insertion into Gamma *)

val rule_fire : t  (** Phase B: one tuple's rules firing *)

val barrier_flush : t  (** batched-put flush at a step barrier *)

val drain : t  (** one session drain to quiescence *)

val spawn : t  (** pool worker came online (instant) *)

val steal : t  (** successful deque steal (instant) *)

val idle : t  (** pool worker parked waiting for work *)

val advisor : t  (** store advisor promoted a secondary index (instant) *)

val prov_merge : t  (** lineage arenas merged at a step barrier *)

val audit : t
(** runtime causality auditor found a violation (instant, recorded just
    before the exception is raised) *)

val advisor_demote : t
(** store advisor dropped a cold secondary index (instant) *)

val batch_fire : t
(** Phase B batched firing: one (rule, table)-chunk task of a
    vectorized class execution; the span arg is the chunk width *)

val shard_msg : t
(** one cross-shard mailbox message, recorded as a linked flow pair:
    a send half on the producing domain's track and a recv half on the
    owner shard's track, bound by the message's sequence stamp
    ({!Tracer.flow_send} / {!Tracer.flow_recv}; the arg packs
    [(dst_shard, seq)] via {!Tracer.shard_arg}) *)

val shard_drain : t
(** one shard's mailbox-drain task at a watermark exchange; the span is
    re-routed onto the shard's named track by the exporter (arg packs
    the shard id via {!Tracer.shard_arg}) *)

val builtin_count : int
val builtin_name : int -> string option

val of_name : string -> t option
(** Inverse of {!builtin_name} over the builtin set (used to parse
    user-facing suppress lists); [None] for custom kind names. *)

val to_int : t -> int

val custom : int -> t
(** [custom i] is the kind id of the [i]-th tracer-registered name
    (used by {!Tracer.register_kind}; ids start after the builtins). *)
