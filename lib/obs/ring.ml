(* A fixed-capacity event ring for one domain.

   Struct-of-arrays layout: four parallel scalar arrays, so recording
   an event is four plain stores plus a cursor bump — no allocation,
   no lock.  Exactly one domain writes a given ring (the tracer hands
   each domain its own); readers run at quiescence.

   The ring wraps: once [head] passes the capacity the oldest events
   are overwritten and counted as dropped, keeping the most recent
   window — the useful one when diagnosing where a long run ended up.
   Capacity is rounded up to a power of two so the slot index is a
   mask, not a division. *)

type t = {
  tid : int; (* writer's domain id: the export track *)
  mask : int;
  kinds : int array;
  ts : int array; (* start, ns *)
  dur : int array; (* ns; -1 marks an instant event *)
  arg : int array;
  mutable head : int; (* events ever recorded *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~capacity ~tid =
  let cap = next_pow2 (max 2 capacity) in
  {
    tid;
    mask = cap - 1;
    kinds = Array.make cap 0;
    ts = Array.make cap 0;
    dur = Array.make cap 0;
    arg = Array.make cap 0;
    head = 0;
  }

let tid t = t.tid
let capacity t = t.mask + 1

let record t ~kind ~ts ~dur ~arg =
  let i = t.head land t.mask in
  t.kinds.(i) <- kind;
  t.ts.(i) <- ts;
  t.dur.(i) <- dur;
  t.arg.(i) <- arg;
  t.head <- t.head + 1

let length t = min t.head (t.mask + 1)
let dropped t = max 0 (t.head - (t.mask + 1))

(* Oldest retained event first. *)
let iter t f =
  let cap = t.mask + 1 in
  let n = length t in
  let first = if t.head > cap then t.head - cap else 0 in
  for j = 0 to n - 1 do
    let i = (first + j) land t.mask in
    f ~kind:t.kinds.(i) ~ts:t.ts.(i) ~dur:t.dur.(i) ~arg:t.arg.(i)
  done
