(** The metrics registry: named counters, gauges and histograms over
    the runtime, snapshotable between session drains.

    Counters and gauges are pull-based callbacks (free between
    snapshots); histograms are push-based with atomic buckets, safe to
    observe from any domain. *)

type value = Int of int | Float of float

type t

val create : unit -> t

val register_counter : t -> name:string -> (unit -> int) -> unit
(** A monotonically increasing count, read at snapshot time. *)

val register_gauge : t -> name:string -> (unit -> value) -> unit
(** A point-in-time reading (sizes, depths, fills). *)

type histogram

val histogram : t -> name:string -> histogram
(** Create and register a histogram (power-of-two buckets). *)

val observe : histogram -> float -> unit
(** Record one observation; lock-free, callable from any domain. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float
val hist_max : histogram -> float

val hist_quantile : histogram -> float -> float
(** Upper bound of the bucket containing the q-th observation — exact
    to within one power of two. *)

type row = {
  name : string;
  kind : string;  (** ["counter"], ["gauge"] or ["histogram"] *)
  fields : (string * value) list;
}

val snapshot : t -> row list
(** Registration order.  Histogram rows carry
    count/sum/mean/p50/p90/p99/max fields. *)

val read : t -> string -> float option
(** Read one registered source by name (counter/gauge as its value,
    histogram as its observation count); [None] when the name is not
    registered.  One lookup plus one pull — the {!Alerts} evaluator's
    per-rule read, cheap enough for every step barrier. *)

type exported =
  | X_counter of int
  | X_gauge of value
  | X_hist of {
      x_count : int;
      x_sum : float;
      x_buckets : (float * int) list;
          (** (upper bound, cumulative count) pairs in increasing bound
              order — Prometheus-style cumulative buckets.  Buckets with
              no new observations are elided; [x_count] is clamped to at
              least the last cumulative count so a concurrent observer
              can never make the [+Inf] lane undercount the buckets. *)
    }

val export : t -> (string * exported) list
(** Structured snapshot for exposition-format renderers ({!Prom}):
    registration order, histograms with cumulative power-of-two
    buckets rather than precomputed quantiles. *)

val to_csv : Buffer.t -> row list -> unit
(** [name,kind,field,value] lines with a header. *)

val pp : Format.formatter -> row list -> unit
