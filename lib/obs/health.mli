(** The [/health] heartbeat: a compact JSON summary of a live session.

    A pure builder — the engine-facing glue (lib/ops, bin/) supplies
    the numbers and threads subsystem extras (e.g. WAL/fsync lag for a
    durable session) through [extra].  Fields left [None] are omitted
    so the payload stays honest about what is attached. *)

val shard_status :
  prev:(int * int array) option ->
  step:int ->
  backlogs:int array ->
  string * int list
(** Two-scrape shard-backlog degradation: a shard is stuck when its
    mailbox backlog is non-zero at this scrape {e and} the previous
    one, with the step counter unchanged between them (queued batches
    mid-step are normal; queued batches across an idle barrier are
    not).  Returns [("degraded", offending shard ids)] or
    [("ok", [])].  The caller holds the previous [(step, backlogs)]
    scrape. *)

val make :
  ?status:string ->
  ?step:int ->
  ?steps:int ->
  ?processed:int ->
  ?outputs:int ->
  ?pending:int ->
  ?delta:int * int ->
  ?gamma:(string * int) list ->
  ?top_rules:(string * float * int) list ->
  ?utilization:float ->
  ?extra:(string * Json.t) list ->
  unit ->
  Json.t
(** [delta] is (size, depth); [top_rules] entries are
    (rule, decayed self seconds per step, fires).  Always includes
    ["status"] (default ["ok"]) and process ["uptime_s"]. *)

val render :
  ?status:string ->
  ?step:int ->
  ?steps:int ->
  ?processed:int ->
  ?outputs:int ->
  ?pending:int ->
  ?delta:int * int ->
  ?gamma:(string * int) list ->
  ?top_rules:(string * float * int) list ->
  ?utilization:float ->
  ?extra:(string * Json.t) list ->
  unit ->
  string
(** {!make} composed with [Json.to_string]. *)
