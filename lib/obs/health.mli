(** The [/health] heartbeat: a compact JSON summary of a live session.

    A pure builder — the engine-facing glue (lib/ops, bin/) supplies
    the numbers and threads subsystem extras (e.g. WAL/fsync lag for a
    durable session) through [extra].  Fields left [None] are omitted
    so the payload stays honest about what is attached. *)

val make :
  ?status:string ->
  ?step:int ->
  ?steps:int ->
  ?processed:int ->
  ?outputs:int ->
  ?pending:int ->
  ?delta:int * int ->
  ?gamma:(string * int) list ->
  ?top_rules:(string * float * int) list ->
  ?utilization:float ->
  ?extra:(string * Json.t) list ->
  unit ->
  Json.t
(** [delta] is (size, depth); [top_rules] entries are
    (rule, decayed self seconds per step, fires).  Always includes
    ["status"] (default ["ok"]) and process ["uptime_s"]. *)

val render :
  ?status:string ->
  ?step:int ->
  ?steps:int ->
  ?processed:int ->
  ?outputs:int ->
  ?pending:int ->
  ?delta:int * int ->
  ?gamma:(string * int) list ->
  ?top_rules:(string * float * int) list ->
  ?utilization:float ->
  ?extra:(string * Json.t) list ->
  unit ->
  string
(** {!make} composed with [Json.to_string]. *)
