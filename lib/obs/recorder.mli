(** The flight recorder: black-box diagnostics for a live run.

    Holds references to the journal and metrics registry plus caller-
    registered JSON section thunks (profiler top-k, shard backlogs, WAL
    lag, explain trees…), and on demand — uncaught exception,
    [Causality_violation], SIGUSR1, or the ops plane's [/dump] — writes
    one atomic, self-contained diagnostic bundle
    ([flight-<pid>-<n>.json], temp + rename) into its directory.

    Engine-agnostic: anything engine-shaped arrives as a section thunk
    (registered by lib/ops or bin/ glue).  Thunks run under an
    exception guard at dump time; a failing section becomes an
    ["error"] object inside the bundle, never a lost bundle. *)

val schema_version : string
(** The bundle's ["schema"] field — ["jstar-flight-1"]. *)

type t

val create :
  ?journal:Journal.t ->
  ?metrics:Metrics.t ->
  ?journal_tail:int ->
  dir:string ->
  unit ->
  t
(** [journal_tail] (default 512) bounds the journal entries embedded
    per bundle.  [dir] is created on first dump. *)

val dir : t -> string
val dumps : t -> int
(** Bundles written so far. *)

val last_path : t -> string option

val add_section : t -> string -> (unit -> Json.t) -> unit
(** Register a named bundle section, evaluated lazily at dump time. *)

val dump : ?detail:(string * Json.t) list -> t -> reason:string -> string
(** Write one bundle; returns its path.  [detail] fields are spliced
    into the bundle top level (e.g. the failure message).  Journaled as
    an ["recorder"/"dump"] Info event. *)

val on_signal : ?signal:int -> t -> unit
(** Install a signal handler (default SIGUSR1) that dumps a bundle with
    reason ["signal"] — the live-process post-mortem trigger. *)
