(* Span/event kinds.  Represented as small ints so a ring slot is four
   scalar stores; the builtin ones cover the engine and pool call
   sites, and tracers hand out further ids for user-registered names
   (bench phases, application spans). *)

type t = int

let step = 0
let extract = 1
let gamma_insert = 2
let rule_fire = 3
let barrier_flush = 4
let drain = 5
let spawn = 6
let steal = 7
let idle = 8
let advisor = 9
let prov_merge = 10
let audit = 11
let advisor_demote = 12
let batch_fire = 13
let shard_msg = 14
let shard_drain = 15
let builtin_count = 16

let builtin_names =
  [|
    "step";
    "class-extract";
    "gamma-insert";
    "rule-fire";
    "barrier-flush";
    "drain";
    "pool-spawn";
    "pool-steal";
    "pool-idle";
    "advisor-promote";
    "prov-merge";
    "audit-violation";
    "advisor-demote";
    "batch-fire";
    "shard-msg";
    "shard-drain";
  |]

let builtin_name k =
  if k >= 0 && k < builtin_count then Some builtin_names.(k) else None

let of_name name =
  let rec go k =
    if k >= builtin_count then None
    else if String.equal builtin_names.(k) name then Some k
    else go (k + 1)
  in
  go 0

let to_int k = k
let custom i = builtin_count + i
