(* Named phase timing, for breakdowns like the §6.3 measurement that
   attributes 16.9% of PvWatts' single-thread time to reading/parsing,
   63.7% to Gamma insertion, 3.8% to Delta insertion and 15.6% to the
   reducers — the numbers that motivate the Disruptor redesign and its
   Amdahl bound.

   Accumulation is a Hashtbl probe, O(1) per call; the old assoc-list
   representation rewrote the whole list on every [add], quadratic in
   distinct phases x calls.  First-registration order is kept
   separately for reporting. *)

type t = {
  tbl : (string, float ref) Hashtbl.t;
  mutable order : string list; (* reverse first-registration order *)
}

let create () = { tbl = Hashtbl.create 8; order = [] }

let add t name seconds =
  match Hashtbl.find_opt t.tbl name with
  | Some cell -> cell := !cell +. seconds
  | None ->
      Hashtbl.add t.tbl name (ref seconds);
      t.order <- name :: t.order

let time t name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  add t name (Unix.gettimeofday () -. t0);
  r

let phases t =
  List.rev_map (fun n -> (n, !(Hashtbl.find t.tbl n))) t.order

let total t = Hashtbl.fold (fun _ s acc -> acc +. !s) t.tbl 0.0

let fractions t =
  let tot = total t in
  if tot <= 0.0 then []
  else List.map (fun (n, s) -> (n, s /. tot)) (phases t)

(* Amdahl's law: maximum speedup when everything except the phases named
   in [serial] is parallelised over [workers] ways — the paper's
   1 / (0.169 + (1 - 0.169) / 12) = 4.2x computation. *)
let amdahl_bound t ~serial ~workers =
  let serial_frac =
    List.fold_left
      (fun acc (n, f) -> if List.mem n serial then acc +. f else acc)
      0.0 (fractions t)
  in
  1.0 /. (serial_frac +. ((1.0 -. serial_frac) /. float_of_int workers))

let pp ppf t =
  let tot = total t in
  List.iter
    (fun (name, s) ->
      Fmt.pf ppf "  %-28s %8.3fs  %5.1f%%@." name s
        (if tot > 0.0 then 100.0 *. s /. tot else 0.0))
    (phases t)
