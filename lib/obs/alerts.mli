(** Declarative threshold alerting over the {!Metrics} registry.

    Rules (threshold, EMA per-step rate, absence) are evaluated at step
    barriers — the engine's [Config.step_hook] — through a three-state
    hysteresis machine per rule (ok → pending → firing, with
    configurable consecutive-eval counts in both directions), journaled
    on every transition, served at [/alerts] and exported in the
    Prometheus [ALERTS] convention.

    Observational only: evaluation reads pull-based registry sources
    and never feeds anything back into evaluation, so deterministic
    digest lanes are bit-identical with alerting on or off. *)

type cmp = Gt | Lt

val cmp_name : cmp -> string

type condition =
  | Threshold of { metric : string; cmp : cmp; value : float }
      (** instantaneous reading vs a bound *)
  | Rate of { metric : string; cmp : cmp; value : float }
      (** EMA-smoothed per-step delta vs a bound (units per step);
          needs two readings before it can hold at all *)
  | Absent of { metric : string }
      (** the metric is missing from the registry *)

type rule = {
  r_name : string;
  r_cond : condition;
  r_for : int;  (** consecutive true evals before pending → firing *)
  r_clear : int;  (** consecutive false evals before firing → ok *)
}

val rule : ?for_:int -> ?clear:int -> name:string -> condition -> rule
(** [for_] and [clear] default to 1 ([for_ = 1] fires immediately).
    @raise Invalid_argument when either is < 1. *)

val metric_of_rule : rule -> string

type state = Ok | Pending | Firing

val state_name : state -> string

type t

val create : ?journal:Journal.t -> rule list -> t
val set_journal : t -> Journal.t -> unit
val rules : t -> rule list

val eval : t -> step:int -> Metrics.t -> unit
(** Advance every rule's machine against the live registry.  Reads only
    the metrics the rules name (one {!Metrics.read} each), never a full
    export — safe to run at every step barrier. *)

val evals : t -> int
val transitions : t -> int

type status = {
  a_name : string;
  a_state : state;
  a_since_step : int;  (** step of the last state change *)
  a_value : float option;  (** reading (or EMA rate) at the last eval *)
  a_condition : condition;
}

val statuses : t -> status list
val firing : t -> string list

val to_json : t -> Json.t
(** The [/alerts] endpoint body. *)

val prom_lines : ?namespace:string -> t -> string
(** [ALERTS{alertname="…",alertstate="pending"|"firing"} 1] samples for
    every non-ok alert — appended to the [/metrics] exposition. *)

val parse_spec : string -> (rule, string) result
(** Parse the CLI form
    [NAME:METRIC>VALUE], [NAME:METRIC<VALUE], [NAME:rate(METRIC)>VALUE]
    or [NAME:absent(METRIC)], each with optional [:for=N] / [:clear=M]
    suffixes. *)
