(* Declarative threshold alerting over the metrics registry.

   A rule names one metric and a condition — an instantaneous threshold,
   an EMA-smoothed per-step rate, or absence from the registry — and the
   evaluator advances a three-state hysteresis machine per rule:

       ok --cond--> pending --cond for N evals--> firing
       firing --!cond for M evals--> ok

   so a metric hovering around its threshold cannot flap the alert at
   step frequency.  Evaluation runs at step barriers (the engine's
   [Config.step_hook]), reads only the metrics the rules name (never a
   full registry export — gauge reads can be as expensive as a Gamma
   rescan), and journals every state transition.

   Like the journal and the profiler, alerting is observational only:
   the evaluator reads pull-based sources and mutates nothing the
   engine ever looks at, so digests are bit-identical with it on or
   off. *)

type cmp = Gt | Lt

let cmp_name = function Gt -> ">" | Lt -> "<"
let cmp_holds cmp v threshold =
  match cmp with Gt -> v > threshold | Lt -> v < threshold

type condition =
  | Threshold of { metric : string; cmp : cmp; value : float }
  | Rate of { metric : string; cmp : cmp; value : float }
      (* EMA of the metric's per-step delta (units per step) *)
  | Absent of { metric : string }

type rule = {
  r_name : string;
  r_cond : condition;
  r_for : int;  (* consecutive true evals before pending -> firing *)
  r_clear : int;  (* consecutive false evals before firing -> ok *)
}

let metric_of_rule r =
  match r.r_cond with
  | Threshold { metric; _ } | Rate { metric; _ } | Absent { metric } -> metric

let rule ?(for_ = 1) ?(clear = 1) ~name cond =
  if for_ < 1 then invalid_arg "Alerts.rule: for_ must be >= 1";
  if clear < 1 then invalid_arg "Alerts.rule: clear must be >= 1";
  { r_name = name; r_cond = cond; r_for = for_; r_clear = clear }

type state = Ok | Pending | Firing

let state_name = function Ok -> "ok" | Pending -> "pending" | Firing -> "firing"

(* EMA smoothing for Rate rules: weight of the newest per-step rate
   sample.  High enough to follow a real regime change within a few
   evals, low enough to ride out one noisy barrier. *)
let rate_alpha = 0.3

type cell = {
  rule : rule;
  mutable st : state;
  mutable since_step : int;  (* step of the last state change *)
  mutable consec_true : int;
  mutable consec_false : int;
  mutable last_value : float option;  (* metric reading at last eval *)
  mutable rate_prev : (int * float) option;  (* (step, value) for deltas *)
  mutable rate_ema : float option;
}

type t = {
  cells : cell array;
  mutable journal : Journal.t option;
  mutable evals : int;
  mutable transitions : int;
}

let create ?journal rules =
  {
    cells =
      Array.of_list
        (List.map
           (fun rule ->
             {
               rule;
               st = Ok;
               since_step = 0;
               consec_true = 0;
               consec_false = 0;
               last_value = None;
               rate_prev = None;
               rate_ema = None;
             })
           rules);
    journal;
    evals = 0;
    transitions = 0;
  }

let set_journal t j = t.journal <- Some j
let rules t = Array.to_list (Array.map (fun c -> c.rule) t.cells)
let evals t = t.evals
let transitions t = t.transitions

let condition_json = function
  | Threshold { metric; cmp; value } ->
      Json.Obj
        [
          ("kind", Json.Str "threshold");
          ("metric", Json.Str metric);
          ("cmp", Json.Str (cmp_name cmp));
          ("value", Json.Num value);
        ]
  | Rate { metric; cmp; value } ->
      Json.Obj
        [
          ("kind", Json.Str "rate");
          ("metric", Json.Str metric);
          ("cmp", Json.Str (cmp_name cmp));
          ("value", Json.Num value);
        ]
  | Absent { metric } ->
      Json.Obj [ ("kind", Json.Str "absent"); ("metric", Json.Str metric) ]

let journal_transition t cell ~step ~from_ ~to_ =
  t.transitions <- t.transitions + 1;
  match t.journal with
  | None -> ()
  | Some j ->
      let sev =
        match to_ with
        | Firing -> Journal.Warn
        | Ok | Pending -> Journal.Info
      in
      Journal.log j sev ~comp:"alerts" ~event:"transition"
        ([
           ("alert", Json.Str cell.rule.r_name);
           ("from", Json.Str (state_name from_));
           ("to", Json.Str (state_name to_));
           ("step", Json.Num (float_of_int step));
           ("condition", condition_json cell.rule.r_cond);
         ]
        @
        match cell.last_value with
        | Some v -> [ ("value", Json.Num v) ]
        | None -> [])

let set_state t cell ~step st =
  if cell.st <> st then begin
    let from_ = cell.st in
    cell.st <- st;
    cell.since_step <- step;
    journal_transition t cell ~step ~from_ ~to_:st
  end

(* One rule's condition against the live registry.  Rate rules need two
   readings before they can produce a rate at all; until then the
   condition is false (an alert should not fire off one sample). *)
let condition_holds cell ~step metrics =
  match cell.rule.r_cond with
  | Threshold { metric; cmp; value } -> (
      match Metrics.read metrics metric with
      | None ->
          cell.last_value <- None;
          false
      | Some v ->
          cell.last_value <- Some v;
          cmp_holds cmp v value)
  | Absent { metric } ->
      let r = Metrics.read metrics metric in
      cell.last_value <- r;
      r = None
  | Rate { metric; cmp; value } -> (
      match Metrics.read metrics metric with
      | None ->
          cell.last_value <- None;
          cell.rate_prev <- None;
          false
      | Some v -> (
          let prev = cell.rate_prev in
          cell.rate_prev <- Some (step, v);
          match prev with
          | Some (s0, v0) when step > s0 ->
              let inst = (v -. v0) /. float_of_int (step - s0) in
              let ema =
                match cell.rate_ema with
                | None -> inst
                | Some e -> ((1.0 -. rate_alpha) *. e) +. (rate_alpha *. inst)
              in
              cell.rate_ema <- Some ema;
              cell.last_value <- Some ema;
              cmp_holds cmp ema value
          | _ ->
              cell.last_value <- Some v;
              false))

let eval_cell t cell ~step metrics =
  let holds = condition_holds cell ~step metrics in
  if holds then begin
    cell.consec_true <- cell.consec_true + 1;
    cell.consec_false <- 0
  end
  else begin
    cell.consec_false <- cell.consec_false + 1;
    cell.consec_true <- 0
  end;
  match cell.st with
  | Ok ->
      if holds then
        set_state t cell ~step
          (if cell.rule.r_for <= 1 then Firing else Pending)
  | Pending ->
      if not holds then set_state t cell ~step Ok
      else if cell.consec_true >= cell.rule.r_for then
        set_state t cell ~step Firing
  | Firing ->
      if (not holds) && cell.consec_false >= cell.rule.r_clear then
        set_state t cell ~step Ok

let eval t ~step metrics =
  t.evals <- t.evals + 1;
  Array.iter (fun cell -> eval_cell t cell ~step metrics) t.cells

type status = {
  a_name : string;
  a_state : state;
  a_since_step : int;
  a_value : float option;
  a_condition : condition;
}

let statuses t =
  Array.to_list
    (Array.map
       (fun c ->
         {
           a_name = c.rule.r_name;
           a_state = c.st;
           a_since_step = c.since_step;
           a_value = c.last_value;
           a_condition = c.rule.r_cond;
         })
       t.cells)

let firing t =
  List.filter_map
    (fun s -> if s.a_state = Firing then Some s.a_name else None)
    (statuses t)

let to_json t =
  Json.Obj
    [
      ("evals", Json.Num (float_of_int t.evals));
      ("transitions", Json.Num (float_of_int t.transitions));
      ( "alerts",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 ([
                    ("name", Json.Str s.a_name);
                    ("state", Json.Str (state_name s.a_state));
                    ("since_step", Json.Num (float_of_int s.a_since_step));
                    ("condition", condition_json s.a_condition);
                  ]
                 @
                 match s.a_value with
                 | Some v -> [ ("value", Json.Num v) ]
                 | None -> []))
             (statuses t)) );
    ]

(* Prometheus ALERTS convention: one series per pending/firing alert,
   value 1 — appended to the /metrics exposition so an unmodified
   Prometheus scrape picks alerts up next to the registry. *)
let prom_lines ?(namespace = "jstar") t =
  ignore namespace;
  let b = Buffer.create 256 in
  let active =
    List.filter (fun s -> s.a_state <> Ok) (statuses t)
  in
  if active <> [] then begin
    Buffer.add_string b "# TYPE ALERTS gauge\n";
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "ALERTS{alertname=%S,alertstate=%S} 1\n" s.a_name
             (state_name s.a_state)))
      active
  end;
  Buffer.contents b

(* -- spec parsing ----------------------------------------------------

   The CLI's declarative form, one rule per --alert flag:

     NAME:METRIC>VALUE[:for=N][:clear=M]
     NAME:METRIC<VALUE[:for=N][:clear=M]
     NAME:rate(METRIC)>VALUE[...]          per-step EMA rate
     NAME:absent(METRIC)[...]              metric missing from registry *)

let parse_spec spec =
  let fail msg = Error (Printf.sprintf "--alert %s: %s" spec msg) in
  match String.split_on_char ':' spec with
  | name :: expr :: opts when name <> "" && expr <> "" -> (
      let for_ = ref 1 and clear = ref 1 and bad = ref None in
      List.iter
        (fun o ->
          match String.split_on_char '=' o with
          | [ "for"; n ] -> (
              match int_of_string_opt n with
              | Some v when v >= 1 -> for_ := v
              | _ -> bad := Some ("bad for= value: " ^ n))
          | [ "clear"; n ] -> (
              match int_of_string_opt n with
              | Some v when v >= 1 -> clear := v
              | _ -> bad := Some ("bad clear= value: " ^ n))
          | _ -> bad := Some ("unknown option: " ^ o))
        opts;
      match !bad with
      | Some msg -> fail msg
      | None -> (
          let wrap metric inner =
            (* "rate(m)" / "absent(m)" unwrapped to (kind, m) *)
            let plen = String.length inner in
            if
              String.length metric > plen + 2
              && String.sub metric 0 (plen + 1) = inner ^ "("
              && metric.[String.length metric - 1] = ')'
            then
              Some (String.sub metric (plen + 1) (String.length metric - plen - 2))
            else None
          in
          let split_cmp s =
            match String.index_opt s '>' with
            | Some i -> Some (Gt, String.sub s 0 i,
                              String.sub s (i + 1) (String.length s - i - 1))
            | None -> (
                match String.index_opt s '<' with
                | Some i ->
                    Some (Lt, String.sub s 0 i,
                          String.sub s (i + 1) (String.length s - i - 1))
                | None -> None)
          in
          match split_cmp expr with
          | Some (cmp, lhs, rhs) -> (
              match float_of_string_opt rhs with
              | None -> fail ("threshold does not parse as a number: " ^ rhs)
              | Some value -> (
                  match wrap lhs "rate" with
                  | Some metric ->
                      Ok (rule ~for_:!for_ ~clear:!clear ~name
                            (Rate { metric; cmp; value }))
                  | None ->
                      if lhs = "" then fail "empty metric name"
                      else
                        Ok (rule ~for_:!for_ ~clear:!clear ~name
                              (Threshold { metric = lhs; cmp; value }))))
          | None -> (
              match wrap expr "absent" with
              | Some metric ->
                  Ok (rule ~for_:!for_ ~clear:!clear ~name (Absent { metric }))
              | None ->
                  fail "expected METRIC>VALUE, METRIC<VALUE, rate(M)>V or \
                        absent(M)")))
  | _ -> fail "expected NAME:CONDITION[:for=N][:clear=M]"
