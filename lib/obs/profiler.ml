(* The continuous profiler: always-on per-rule / per-table cost
   attribution for a live engine.

   Two lanes with very different costs:

   - The {e rule lane} (Phase B) is fed from the firing hot path:
     [fire_start]/[fire_stop] bracket each firing (or each batched
     chunk), timing wall time and maintaining a per-domain frame stack
     so a rule's *self* time excludes the nested firings its puts
     trigger on the immediate path.  Counts and sampled nanoseconds go
     to striped plain-int arrays — no atomics; two domains hashing to
     one stripe can lose an update, which is acceptable for a
     monitoring lane and impossible for the deterministic engine
     counters, which live elsewhere (Table_stats) and are untouched.

   - The {e table lane} (Phase A) costs nothing on the hot path: at
     each step barrier the engine folds the deltas of its existing
     striped Table_stats counters (puts, queries) and current Gamma
     sizes into this profiler, which turns them into per-step
     exponentially-decayed rates.

   [step_barrier] also folds scheduler counters (tasks, steals, parked
   idle time — see {!Jstar_sched.Pool.stats}, passed in by the engine
   because the dependency arrow points sched → obs) and GC/allocation
   deltas, giving utilization and allocation-rate lanes per step.

   Determinism: everything here is wall-clock derived and therefore
   non-deterministic run to run; nothing here feeds back into
   evaluation order, digests, or any deterministic counter. *)

type stripe = {
  s_fires : int array; (* firings per rule, sampled or not *)
  s_timed : int array; (* firings that were actually timed *)
  s_self_ns : int array; (* self wall time of timed firings *)
  mutable s_tick : int; (* rotating sampling decision *)
}

type sched_totals = {
  sc_tasks : int;
  sc_steals : int;
  sc_parks : int;
  sc_idle_ns : int;
}

type shard_totals = {
  sh_occupancy : int array; (* per-shard pending tuples at the barrier *)
  sh_backlog : int array; (* per-shard queued mailbox messages *)
  sh_msgs : int; (* cumulative mailbox messages posted *)
  sh_msgs_cross : int; (* of those, cross-shard *)
  sh_tuples : int; (* cumulative tuples shipped in messages *)
  sh_tuples_cross : int;
}

type t = {
  rules : string array; (* by rule id *)
  tables : string array; (* by table id *)
  stripes : stripe array; (* length a power of two *)
  stripe_mask : int;
  decay : float; (* EMA retention per step *)
  sample : int; (* time 1 in [sample] firings *)
  workers : int; (* pool width for utilization *)
  (* Barrier-owned state below: written only by [step_barrier] and the
     snapshot readers, which run on the driving domain / a monitoring
     thread.  Monitoring reads may be slightly stale; never wrong by
     more than in-flight updates. *)
  mutable steps : int;
  mutable last_barrier_ns : int;
  (* rule lane folds *)
  prev_fires : int array;
  prev_self_ns : int array;
  ema_self_ns : float array; (* decayed self ns per step *)
  (* table lane folds *)
  prev_puts : int array;
  prev_queries : int array;
  mutable last_gamma : int array;
  ema_puts : float array;
  ema_queries : float array;
  (* scheduler lane *)
  mutable last_sched : sched_totals; (* totals at the last barrier *)
  mutable ema_util : float;
  mutable have_util : bool;
  (* shard lane (Config.shards): occupancy and message-rate folds *)
  mutable last_shards : shard_totals option;
  mutable ema_shard_msgs : float; (* decayed messages per step *)
  mutable ema_shard_tuples : float; (* decayed shipped tuples per step *)
  (* GC lane *)
  mutable prev_alloc_words : float;
  mutable alloc_words : float; (* cumulative since create *)
  mutable ema_alloc_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
}

let alloc_words_now () =
  let minor, promoted, major = Gc.counters () in
  minor +. major -. promoted

let create ?(stripes = 8) ?(decay = 0.98) ?(sample = 1) ?(workers = 1)
    ~rules ~tables () =
  if decay < 0.0 || decay >= 1.0 then invalid_arg "Profiler.create: decay";
  if sample < 1 then invalid_arg "Profiler.create: sample";
  let rec pow2 n = if n >= stripes then n else pow2 (n * 2) in
  let nstripes = pow2 1 in
  let nr = Array.length rules and nt = Array.length tables in
  {
    rules;
    tables;
    stripes =
      Array.init nstripes (fun _ ->
          {
            s_fires = Array.make nr 0;
            s_timed = Array.make nr 0;
            s_self_ns = Array.make nr 0;
            s_tick = 0;
          });
    stripe_mask = nstripes - 1;
    decay;
    sample;
    workers = max 1 workers;
    steps = 0;
    last_barrier_ns = Monotonic.now_ns ();
    prev_fires = Array.make nr 0;
    prev_self_ns = Array.make nr 0;
    ema_self_ns = Array.make nr 0.0;
    prev_puts = Array.make nt 0;
    prev_queries = Array.make nt 0;
    last_gamma = Array.make nt 0;
    ema_puts = Array.make nt 0.0;
    ema_queries = Array.make nt 0.0;
    last_sched = { sc_tasks = 0; sc_steals = 0; sc_parks = 0; sc_idle_ns = 0 };
    ema_util = 0.0;
    have_util = false;
    last_shards = None;
    ema_shard_msgs = 0.0;
    ema_shard_tuples = 0.0;
    prev_alloc_words = alloc_words_now ();
    alloc_words = 0.0;
    ema_alloc_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
  }

(* -- hot path -------------------------------------------------------- *)

(* Per-domain frame stack for self-time: frame [d] accumulates the wall
   time of the timed firings nested directly under depth [d]. *)
type frames = { mutable depth : int; mutable child_ns : int array }

let frames_key =
  Domain.DLS.new_key (fun () -> { depth = 0; child_ns = Array.make 32 0 })

let my_stripe t = (Domain.self () :> int) land t.stripe_mask

let push_frame () =
  let fs = Domain.DLS.get frames_key in
  if fs.depth >= Array.length fs.child_ns then begin
    let bigger = Array.make (2 * Array.length fs.child_ns) 0 in
    Array.blit fs.child_ns 0 bigger 0 (Array.length fs.child_ns);
    fs.child_ns <- bigger
  end;
  fs.child_ns.(fs.depth) <- 0;
  fs.depth <- fs.depth + 1;
  Monotonic.now_ns ()

(* [fire_start] returns the start timestamp, or 0 for a firing that is
   counted but not timed (sampled out).  With the default [sample = 1]
   every firing is timed and self-times are exact; with sampling, an
   untimed child's wall time is charged to its timed parent's self —
   the documented approximation that buys a cheaper hot path. *)
let fire_start t =
  if t.sample = 1 then push_frame ()
  else begin
    let s = t.stripes.(my_stripe t) in
    let tick = s.s_tick in
    s.s_tick <- tick + 1;
    if tick mod t.sample <> 0 then 0 else push_frame ()
  end

let fire_stop t ~rule ?(fires = 1) t0 =
  let s = t.stripes.(my_stripe t) in
  s.s_fires.(rule) <- s.s_fires.(rule) + fires;
  if t0 <> 0 then begin
    let now = Monotonic.now_ns () in
    let dur = now - t0 in
    let fs = Domain.DLS.get frames_key in
    fs.depth <- fs.depth - 1;
    let self = dur - fs.child_ns.(fs.depth) in
    if fs.depth > 0 then
      fs.child_ns.(fs.depth - 1) <- fs.child_ns.(fs.depth - 1) + dur;
    s.s_timed.(rule) <- s.s_timed.(rule) + fires;
    s.s_self_ns.(rule) <- s.s_self_ns.(rule) + max 0 self
  end

(* -- folds ----------------------------------------------------------- *)

let fold_rules t =
  let nr = Array.length t.rules in
  let fires = Array.make nr 0
  and timed = Array.make nr 0
  and self_ns = Array.make nr 0 in
  Array.iter
    (fun s ->
      for r = 0 to nr - 1 do
        fires.(r) <- fires.(r) + s.s_fires.(r);
        timed.(r) <- timed.(r) + s.s_timed.(r);
        self_ns.(r) <- self_ns.(r) + s.s_self_ns.(r)
      done)
    t.stripes;
  (fires, timed, self_ns)

(* Scale sampled self time up to the full firing count, so sampled and
   unsampled profiles read in the same units. *)
let scaled_self ~fires ~timed ~self_ns =
  if timed = 0 then 0.0
  else if timed = fires then float_of_int self_ns
  else float_of_int self_ns *. (float_of_int fires /. float_of_int timed)

let step_barrier t ~puts ~queries ~gamma ?sched ?shards () =
  let now = Monotonic.now_ns () in
  let wall = max 1 (now - t.last_barrier_ns) in
  t.last_barrier_ns <- now;
  t.steps <- t.steps + 1;
  let d = t.decay in
  let ema prev delta = (d *. prev) +. ((1.0 -. d) *. delta) in
  (* rule lane *)
  let fires, timed, self_ns = fold_rules t in
  ignore timed;
  for r = 0 to Array.length t.rules - 1 do
    let dself = self_ns.(r) - t.prev_self_ns.(r) in
    t.prev_self_ns.(r) <- self_ns.(r);
    t.prev_fires.(r) <- fires.(r);
    t.ema_self_ns.(r) <- ema t.ema_self_ns.(r) (float_of_int dself)
  done;
  (* table lane *)
  for i = 0 to Array.length t.tables - 1 do
    let dputs = puts.(i) - t.prev_puts.(i)
    and dqueries = queries.(i) - t.prev_queries.(i) in
    t.prev_puts.(i) <- puts.(i);
    t.prev_queries.(i) <- queries.(i);
    t.ema_puts.(i) <- ema t.ema_puts.(i) (float_of_int dputs);
    t.ema_queries.(i) <- ema t.ema_queries.(i) (float_of_int dqueries)
  done;
  t.last_gamma <- gamma;
  (* scheduler lane *)
  (match sched with
  | None -> ()
  | Some sc ->
      let didle = sc.sc_idle_ns - t.last_sched.sc_idle_ns in
      t.last_sched <- sc;
      let capacity = float_of_int (t.workers * wall) in
      let util = 1.0 -. (float_of_int didle /. capacity) in
      let util = Float.max 0.0 (Float.min 1.0 util) in
      t.ema_util <- (if t.have_util then ema t.ema_util util else util);
      t.have_util <- true);
  (* shard lane *)
  (match shards with
  | None -> ()
  | Some sh ->
      let prev_msgs, prev_tuples =
        match t.last_shards with
        | Some p -> (p.sh_msgs, p.sh_tuples)
        | None -> (0, 0)
      in
      t.ema_shard_msgs <-
        ema t.ema_shard_msgs (float_of_int (sh.sh_msgs - prev_msgs));
      t.ema_shard_tuples <-
        ema t.ema_shard_tuples (float_of_int (sh.sh_tuples - prev_tuples));
      t.last_shards <- Some sh);
  (* GC lane *)
  let aw = alloc_words_now () in
  let daw = Float.max 0.0 (aw -. t.prev_alloc_words) in
  t.prev_alloc_words <- aw;
  t.alloc_words <- t.alloc_words +. daw;
  t.ema_alloc_words <- ema t.ema_alloc_words daw;
  let st = Gc.quick_stat () in
  t.minor_collections <- st.Gc.minor_collections;
  t.major_collections <- st.Gc.major_collections

(* -- snapshots ------------------------------------------------------- *)

type rule_row = {
  pr_id : int;
  pr_name : string;
  pr_fires : int;
  pr_self_s : float; (* cumulative, sampling-scaled *)
  pr_ema_self_s : float; (* decayed self seconds per step *)
}

type table_row = {
  pt_name : string;
  pt_puts : int;
  pt_queries : int;
  pt_gamma : int;
  pt_ema_puts : float;
  pt_ema_queries : float;
}

type sched_row = {
  ps_tasks : int;
  ps_steals : int;
  ps_parks : int;
  ps_idle_s : float;
  ps_utilization : float; (* decayed, 0..1 *)
}

type gc_row = {
  pg_alloc_words : float;
  pg_ema_alloc_words : float;
  pg_minor : int;
  pg_major : int;
}

type shard_row = {
  psh_count : int;
  psh_occupancy : int array;
  psh_backlog : int array;
  psh_msgs : int;
  psh_msgs_cross : int;
  psh_tuples : int;
  psh_tuples_cross : int;
  psh_ema_msgs : float; (* decayed messages per step *)
  psh_ema_tuples : float; (* decayed shipped tuples per step *)
}

let steps t = t.steps

let rules t =
  let fires, timed, self_ns = fold_rules t in
  Array.mapi
    (fun r name ->
      {
        pr_id = r;
        pr_name = name;
        pr_fires = fires.(r);
        pr_self_s =
          scaled_self ~fires:fires.(r) ~timed:timed.(r) ~self_ns:self_ns.(r)
          *. 1e-9;
        pr_ema_self_s = t.ema_self_ns.(r) *. 1e-9;
      })
    t.rules

let top_rules ?(k = 10) t =
  let rows = Array.to_list (rules t) in
  let rows = List.filter (fun r -> r.pr_fires > 0) rows in
  let rows =
    List.sort
      (fun a b ->
        match compare b.pr_ema_self_s a.pr_ema_self_s with
        | 0 -> (
            match compare b.pr_fires a.pr_fires with
            | 0 -> compare a.pr_id b.pr_id
            | c -> c)
        | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < k) rows

let tables t =
  Array.mapi
    (fun i name ->
      {
        pt_name = name;
        pt_puts = t.prev_puts.(i);
        pt_queries = t.prev_queries.(i);
        pt_gamma = (if i < Array.length t.last_gamma then t.last_gamma.(i) else 0);
        pt_ema_puts = t.ema_puts.(i);
        pt_ema_queries = t.ema_queries.(i);
      })
    t.tables

let sched t =
  if not t.have_util then None
  else
    Some
      {
        ps_tasks = t.last_sched.sc_tasks;
        ps_steals = t.last_sched.sc_steals;
        ps_parks = t.last_sched.sc_parks;
        ps_idle_s = float_of_int t.last_sched.sc_idle_ns *. 1e-9;
        ps_utilization = t.ema_util;
      }

let gc t =
  {
    pg_alloc_words = t.alloc_words;
    pg_ema_alloc_words = t.ema_alloc_words;
    pg_minor = t.minor_collections;
    pg_major = t.major_collections;
  }

let shards t =
  Option.map
    (fun sh ->
      {
        psh_count = Array.length sh.sh_occupancy;
        psh_occupancy = sh.sh_occupancy;
        psh_backlog = sh.sh_backlog;
        psh_msgs = sh.sh_msgs;
        psh_msgs_cross = sh.sh_msgs_cross;
        psh_tuples = sh.sh_tuples;
        psh_tuples_cross = sh.sh_tuples_cross;
        psh_ema_msgs = t.ema_shard_msgs;
        psh_ema_tuples = t.ema_shard_tuples;
      })
    t.last_shards

let utilization t = if t.have_util then Some t.ema_util else None

let to_json ?(k = 10) t =
  let open Json in
  let rule_j r =
    Obj
      [
        ("rule", Str r.pr_name);
        ("fires", Num (float_of_int r.pr_fires));
        ("self_s", Num r.pr_self_s);
        ("ema_self_s", Num r.pr_ema_self_s);
      ]
  in
  let table_j r =
    Obj
      [
        ("table", Str r.pt_name);
        ("puts", Num (float_of_int r.pt_puts));
        ("queries", Num (float_of_int r.pt_queries));
        ("gamma", Num (float_of_int r.pt_gamma));
        ("ema_puts", Num r.pt_ema_puts);
        ("ema_queries", Num r.pt_ema_queries);
      ]
  in
  let g = gc t in
  let base =
    [
      ("steps", Num (float_of_int t.steps));
      ("decay", Num t.decay);
      ("sample", Num (float_of_int t.sample));
      ("deterministic", Bool false);
      ("top_rules", Arr (List.map rule_j (top_rules ~k t)));
      ("tables", Arr (List.map table_j (Array.to_list (tables t))));
      ( "gc",
        Obj
          [
            ("alloc_words", Num g.pg_alloc_words);
            ("ema_alloc_words", Num g.pg_ema_alloc_words);
            ("minor_collections", Num (float_of_int g.pg_minor));
            ("major_collections", Num (float_of_int g.pg_major));
          ] );
    ]
  in
  let base =
    match sched t with
    | None -> base
    | Some s ->
        base
        @ [
            ( "sched",
              Obj
                [
                  ("tasks", Num (float_of_int s.ps_tasks));
                  ("steals", Num (float_of_int s.ps_steals));
                  ("parks", Num (float_of_int s.ps_parks));
                  ("idle_s", Num s.ps_idle_s);
                  ("utilization", Num s.ps_utilization);
                ] );
          ]
  in
  match shards t with
  | None -> Obj base
  | Some sh ->
      let ints a =
        Arr (Array.to_list (Array.map (fun v -> Num (float_of_int v)) a))
      in
      Obj
        (base
        @ [
            ( "shards",
              Obj
                [
                  ("count", Num (float_of_int sh.psh_count));
                  ("occupancy", ints sh.psh_occupancy);
                  ("mailbox_backlog", ints sh.psh_backlog);
                  ("msgs_posted", Num (float_of_int sh.psh_msgs));
                  ("msgs_cross", Num (float_of_int sh.psh_msgs_cross));
                  ("tuples_shipped", Num (float_of_int sh.psh_tuples));
                  ("tuples_cross", Num (float_of_int sh.psh_tuples_cross));
                  ("ema_msgs", Num sh.psh_ema_msgs);
                  ("ema_tuples", Num sh.psh_ema_tuples);
                ] );
          ])
