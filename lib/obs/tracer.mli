(** Low-overhead span tracer: a fixed-size event ring per domain,
    timestamped with the {!Monotonic} clock, no locks on the recording
    path, and a dropped-event count once a ring wraps.

    With the tracer below [Spans] every recording entry point is a
    single branch and allocates nothing, so instrumentation can stay in
    place in production code paths. *)

type t

val create :
  ?capacity:int ->
  ?suppress:Kind.t list ->
  ?sample:int ->
  level:Level.t ->
  unit ->
  t
(** [capacity] is events per domain ring (default 65536, rounded up to
    a power of two).  [suppress] lists kinds that are never recorded
    even at [Spans] level — the per-kind enable mask that lets a
    rule-fire-heavy run keep [step]/[extract] spans while dropping the
    per-task [rule_fire] events.  [sample] (default 1) records only
    every [N]-th event of each unmasked kind, per domain — the first
    event of each window is kept, so rare kinds still appear.
    @raise Invalid_argument when [sample < 1]. *)

val disabled : t
(** A shared [Off] tracer for components instrumented unconditionally
    (e.g. a pool created without one). *)

val level : t -> Level.t
val spans_on : t -> bool
val counters_on : t -> bool

val set_suppressed : t -> Kind.t list -> unit
(** Replace the suppress mask.  Not synchronized with recorders: meant
    for quiescent points (before a run, at a barrier). *)

val suppressed : t -> Kind.t -> bool

val enabled : t -> Kind.t -> bool
(** [spans_on t && not (suppressed t k)] — hot sites cache this per
    kind instead of re-testing the mask per event. *)

(** {1 Recording} *)

val instant : t -> ?arg:int -> Kind.t -> unit
(** A point event (steal, spawn…). *)

val start : t -> int
(** Timestamp for a span about to open; [0] when spans are off. *)

val stop : t -> ?arg:int -> Kind.t -> int -> unit
(** [stop t kind t0] records the span opened at [start]'s [t0],
    closing now. *)

val record_span : t -> ?arg:int -> Kind.t -> ts:int -> dur:int -> unit
(** Record a span from timestamps the caller already read (avoids a
    second clock read when the caller times the region itself). *)

val span : t -> ?arg:int -> Kind.t -> (unit -> 'a) -> 'a
(** Convenience wrapper for cold call sites (allocates a closure). *)

(** {2 Cross-shard flow events}

    Linked send/recv halves for mailbox messages, bound by a sequence
    stamp and rendered as causal arrows by {!Export.chrome_trace}.
    Stored with dur sentinels [-2] (send) / [-3] (recv); instants stay
    [-1].  Flow halves bypass [sample] — half a pair is worse than
    none. *)

val shard_arg : shard:int -> seq:int -> int
(** Pack a destination shard id (10 bits) and message sequence stamp
    into one event arg. *)

val arg_shard : int -> int
val arg_seq : int -> int

val flow_dur_send : int
val flow_dur_recv : int

val flow_send : t -> ?arg:int -> Kind.t -> unit
(** The producing side of a message, on this domain's ring. *)

val flow_recv : t -> ?arg:int -> Kind.t -> unit
(** The consuming side, on the draining domain's ring; the exporter
    re-routes it onto the destination shard's named track. *)

val register_kind : t -> string -> Kind.t
(** Mint (or look up) a kind for a user-supplied span name — bench
    phases, application sections.  Idempotent per name. *)

val kind_name : t -> int -> string

(** {1 Reading (at quiescence)} *)

val rings : t -> Ring.t list
(** Registration order. *)

val dropped : t -> int
(** Events lost to ring wrap, across all rings. *)

val events :
  t -> (tid:int -> kind:int -> ts:int -> dur:int -> arg:int -> unit) -> unit
(** Every retained event, ring by ring, oldest first within a ring.
    [dur = -1] marks instants. *)

val aggregate : t -> (string * int * int) list
(** Per-kind [(name, events, total span ns)] across all rings — the
    phase-breakdown view. *)
