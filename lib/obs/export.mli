(** Exporters over a tracer and a metrics registry. *)

val chrome_trace : Buffer.t -> Tracer.t -> unit
(** Chrome trace-event JSON (object form, ["traceEvents"]): one track
    per domain (tid = domain id), spans as balanced B/E pairs, instants
    as ['i'] events, thread-name metadata per track.  Shard-owned
    events get named tracks of their own ([shard-<k>], tid
    {!shard_tid}): {!Kind.shard_drain} spans and the recv halves of
    {!Kind.shard_msg} flow pairs are re-routed there, while send halves
    stay on the producing domain — so a cross-shard derivation renders
    as a causal arrow between tracks.  Loadable in Perfetto or
    chrome://tracing. *)

val shard_tid : int -> int
(** The synthetic trace tid of shard [k]'s named track (10000 + k). *)

val write_chrome_trace : string -> Tracer.t -> unit

val metrics_csv : Buffer.t -> Metrics.t -> unit
(** [name,kind,field,value] CSV of a snapshot. *)

val write_metrics_csv : string -> Metrics.t -> unit

val console : Format.formatter -> ?metrics:Metrics.t -> Tracer.t -> unit
(** Pretty report: per-kind span breakdown with percentages, then the
    metrics snapshot — the unified successor of [Phase_timer.pp] and
    [Table_stats.pp_snapshot]. *)
