(* The flight recorder: an always-on black box that turns a live run's
   observability state — journal tail, metrics snapshot, and any caller
   -registered sections (profiler top-k, per-shard backlog/occupancy,
   WAL lag, explain trees for the tuples a failure named) — into one
   atomic, self-contained JSON diagnostic bundle.

   Triggers are the caller's: an uncaught engine exception, a
   [Causality_violation], SIGUSR1 ({!on_signal}), or the ops plane's
   [/dump] endpoint all funnel into {!dump}.  Bundles are written
   temp-file + rename, so a reader (or a crash) never sees a torn one.

   This module is engine-agnostic (the obs layer cannot see lib/core):
   everything engine-shaped arrives as a section thunk registered by
   the glue in lib/ops or bin/.  Section thunks run at dump time under
   an exception guard — a failing section becomes an ["error"] field,
   never a lost bundle (the bundle exists *because* something is
   already going wrong). *)

let schema_version = "jstar-flight-1"

type t = {
  dir : string;
  journal : Journal.t option;
  metrics : Metrics.t option;
  journal_tail : int;  (* entries included per bundle *)
  mutable sections : (string * (unit -> Json.t)) list;  (* newest first *)
  mutable dumps : int;
  mutable last_path : string option;
  mutex : Mutex.t;
}

let create ?journal ?metrics ?(journal_tail = 512) ~dir () =
  {
    dir;
    journal;
    metrics;
    journal_tail;
    sections = [];
    dumps = 0;
    last_path = None;
    mutex = Mutex.create ();
  }

let dir t = t.dir
let dumps t = t.dumps
let last_path t = t.last_path

let add_section t name f =
  Mutex.lock t.mutex;
  t.sections <- (name, f) :: t.sections;
  Mutex.unlock t.mutex

let guarded f =
  match f () with
  | j -> j
  | exception exn -> Json.Obj [ ("error", Json.Str (Printexc.to_string exn)) ]

let metrics_json m =
  Json.Obj
    (List.map
       (fun row ->
         ( row.Metrics.name,
           Json.Obj
             (( "kind", Json.Str row.Metrics.kind )
             :: List.map
                  (fun (f, v) ->
                    ( f,
                      match v with
                      | Metrics.Int i -> Json.Num (float_of_int i)
                      | Metrics.Float x -> Json.Num x ))
                  row.Metrics.fields) ))
       (Metrics.snapshot m))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let bundle_json t ~reason ~detail =
  let sections =
    Mutex.lock t.mutex;
    let s = List.rev t.sections in
    Mutex.unlock t.mutex;
    s
  in
  Json.Obj
    ([
       ("schema", Json.Str schema_version);
       ("reason", Json.Str reason);
       ("time_unix", Json.Num (Unix.gettimeofday ()));
       ("pid", Json.Num (float_of_int (Unix.getpid ())));
     ]
    @ detail
    @ (match t.journal with
      | None -> []
      | Some j ->
          [
            ("journal_dropped", Json.Num (float_of_int (Journal.dropped j)));
            ("journal", guarded (fun () -> Journal.to_json ~n:t.journal_tail j));
          ])
    @ (match t.metrics with
      | None -> []
      | Some m -> [ ("metrics", guarded (fun () -> metrics_json m)) ])
    @ List.map (fun (name, f) -> (name, guarded f)) sections)

(* Write one bundle and return its path.  Serialized under the mutex:
   concurrent triggers (an ops thread's /dump racing a signal handler)
   each get their own numbered file. *)
let dump ?(detail = []) t ~reason =
  let json = bundle_json t ~reason ~detail in
  Mutex.lock t.mutex;
  let n = t.dumps in
  t.dumps <- n + 1;
  Mutex.unlock t.mutex;
  mkdir_p t.dir;
  let path =
    Filename.concat t.dir
      (Printf.sprintf "flight-%d-%03d.json" (Unix.getpid ()) n)
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf json;
      Buffer.add_char buf '\n';
      output_string oc (Buffer.contents buf))
    ~finally:(fun () -> close_out oc);
  Sys.rename tmp path;
  t.last_path <- Some path;
  (match t.journal with
  | Some j ->
      Journal.info j ~comp:"recorder" ~event:"dump"
        [ ("reason", Json.Str reason); ("path", Json.Str path) ]
  | None -> ());
  path

(* Install [signal] (SIGUSR1 by convention) to write a bundle from a
   live process.  OCaml runs the handler at a safe point on the main
   thread, where reading observability state is exactly as safe as the
   ops plane's monitoring thread doing it mid-drain. *)
let on_signal ?(signal = Sys.sigusr1) t =
  Sys.set_signal signal
    (Sys.Signal_handle (fun _ -> ignore (dump t ~reason:"signal")))
