(* The structured event journal: a severity-tagged ring of JSON-line
   events fed by the engine, shard, persist and ops layers — the
   narrative companion to the numeric registry.  Metrics say *how much*;
   the journal says *what happened* (step seals, watermark rounds,
   checkpoints, advisor decisions, audit violations) in the order it
   happened, bounded by a fixed-capacity ring so a long run keeps the
   recent window — the one a post-mortem needs.

   Concurrency: one mutex around the ring.  Journal events are
   barrier-frequency (steps, drains, checkpoints), not put-frequency,
   so a lock is fine where the tracer needs per-domain rings.

   Determinism: the journal is observational only — nothing in the
   engine ever reads it back, so recording (or filtering, or wrapping)
   cannot perturb the class sequence or any digest lane. *)

type severity = Debug | Info | Warn | Error

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let severity_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_name = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type entry = {
  j_seq : int;  (* monotonic over the journal's lifetime, 0-based *)
  j_ts_ns : int;  (* Monotonic.now_ns at record time *)
  j_sev : severity;
  j_comp : string;  (* emitting layer: "engine", "shard", "persist", ... *)
  j_event : string;  (* event name: "step-seal", "checkpoint", ... *)
  j_fields : (string * Json.t) list;
}

type t = {
  mask : int;
  ring : entry option array;
  mutable head : int;  (* entries ever accepted (post-filter) *)
  mutable logged : int;  (* entries ever offered, any severity *)
  mutable min_severity : severity;
  mutex : Mutex.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 2048) ?(min_severity = Debug) () =
  let cap = next_pow2 (max 2 capacity) in
  {
    mask = cap - 1;
    ring = Array.make cap None;
    head = 0;
    logged = 0;
    min_severity;
    mutex = Mutex.create ();
  }

let capacity t = t.mask + 1
let min_severity t = t.min_severity
let set_min_severity t sev = t.min_severity <- sev

let log t sev ~comp ~event fields =
  if severity_rank sev >= severity_rank t.min_severity then begin
    Mutex.lock t.mutex;
    t.logged <- t.logged + 1;
    let e =
      {
        j_seq = t.head;
        j_ts_ns = Monotonic.now_ns ();
        j_sev = sev;
        j_comp = comp;
        j_event = event;
        j_fields = fields;
      }
    in
    t.ring.(t.head land t.mask) <- Some e;
    t.head <- t.head + 1;
    Mutex.unlock t.mutex
  end
  else begin
    (* still count filtered offers, so tests can see the filter work *)
    Mutex.lock t.mutex;
    t.logged <- t.logged + 1;
    Mutex.unlock t.mutex
  end

let debug t ~comp ~event fields = log t Debug ~comp ~event fields
let info t ~comp ~event fields = log t Info ~comp ~event fields
let warn t ~comp ~event fields = log t Warn ~comp ~event fields
let error t ~comp ~event fields = log t Error ~comp ~event fields

let recorded t = t.head
let offered t = t.logged
let dropped t = max 0 (t.head - (t.mask + 1))

(* Retained entries, oldest first.  Copies under the mutex so a
   monitoring thread gets a consistent window while the driving thread
   keeps logging. *)
let entries t =
  Mutex.lock t.mutex;
  let cap = t.mask + 1 in
  let n = min t.head cap in
  let first = if t.head > cap then t.head - cap else 0 in
  let out = ref [] in
  for j = n - 1 downto 0 do
    match t.ring.((first + j) land t.mask) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  Mutex.unlock t.mutex;
  !out

let tail ?n t =
  let es = entries t in
  match n with
  | None -> es
  | Some k ->
      let len = List.length es in
      if len <= k then es else List.filteri (fun i _ -> i >= len - k) es

let entry_json e =
  Json.Obj
    ([
       ("seq", Json.Num (float_of_int e.j_seq));
       ("ts_ns", Json.Num (float_of_int e.j_ts_ns));
       ("severity", Json.Str (severity_name e.j_sev));
       ("component", Json.Str e.j_comp);
       ("event", Json.Str e.j_event);
     ]
    @ e.j_fields)

let to_json ?n t = Json.Arr (List.map entry_json (tail ?n t))

(* One JSON object per line, oldest first — the on-disk journal form. *)
let to_lines ?n t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer buf (entry_json e);
      Buffer.add_char buf '\n')
    (tail ?n t);
  Buffer.contents buf
