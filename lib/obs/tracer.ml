(* The span tracer: one event ring per domain, acquired through
   domain-local storage so the recording path takes no lock and sees no
   other domain's cache lines.

   Hot-path contract: with [level < Spans] every recording function is
   a single branch on an immediate value and allocates nothing — the
   engine can leave calls in place under [tracing = Off] at zero cost
   (the engine additionally caches the [spans_on] test in a bool field
   so the common case is one load and branch).

   Ring acquisition: each domain keeps an MRU list of (tracer id, ring)
   pairs in DLS.  The head hit — the only case on a steady-state hot
   path — is allocation-free.  A miss creates a ring, registers it with
   the tracer under a mutex (cold, once per domain per tracer), and
   caps the DLS list so a process that creates many engines over its
   lifetime cannot accumulate unbounded lookup state. *)

type t = {
  id : int;
  level : Level.t;
  capacity : int;
  sample : int;
      (* record every [sample]-th event of each unmasked kind, per
         domain (1 = everything).  The counters live next to the ring
         in DLS, so the sampled path stays lock-free. *)
  mutable suppress_mask : int;
      (* bit [k] set = kind [k] not recorded even at Spans level.  Only
         kinds < 62 are maskable; custom kinds past the word run
         unmasked (no builtin comes close). *)
  mutable rings : Ring.t list; (* registration order, newest first *)
  mutable custom : string list; (* registered kind names, newest first *)
  mutable n_custom : int;
  reg_mutex : Mutex.t;
}

let next_id = Atomic.make 0

let mask_bit k =
  let k = Kind.to_int k in
  if k < 62 then 1 lsl k else 0

let mask_of kinds = List.fold_left (fun m k -> m lor mask_bit k) 0 kinds

let create ?(capacity = 1 lsl 16) ?(suppress = []) ?(sample = 1) ~level () =
  if sample < 1 then invalid_arg "Tracer.create: sample must be >= 1";
  {
    id = Atomic.fetch_and_add next_id 1;
    level;
    capacity;
    sample;
    suppress_mask = mask_of suppress;
    rings = [];
    custom = [];
    n_custom = 0;
    reg_mutex = Mutex.create ();
  }

let disabled = create ~capacity:2 ~level:Level.Off ()
let level t = t.level
let spans_on t = Level.spans_on t.level
let counters_on t = Level.counters_on t.level
let set_suppressed t kinds = t.suppress_mask <- mask_of kinds
let suppressed t k = t.suppress_mask land mask_bit k <> 0
let enabled t k = Level.spans_on t.level && not (suppressed t k)

(* Most-recently-used cache of this domain's (ring, sample counters)
   pairs, across tracers.  The counter array has one slot per kind
   (folded into 64 slots; kinds past the array share slots, which only
   makes their sampling windows interleave). *)
type dls_entry = { e_id : int; e_ring : Ring.t; e_counters : int array }

let dls_key : dls_entry list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let dls_keep = 8
let counter_slots = 64

let entry_for t =
  let cell = Domain.DLS.get dls_key in
  match !cell with
  | e :: _ when e.e_id = t.id -> e
  | entries ->
      let rec split acc = function
        | [] -> None
        | e :: tl when e.e_id = t.id -> Some (e, List.rev_append acc tl)
        | e :: tl -> split (e :: acc) tl
      in
      (match split [] entries with
      | Some (e, rest) ->
          cell := e :: rest;
          e
      | None ->
          let r =
            Ring.create ~capacity:t.capacity ~tid:(Domain.self () :> int)
          in
          Mutex.lock t.reg_mutex;
          t.rings <- r :: t.rings;
          Mutex.unlock t.reg_mutex;
          let e =
            { e_id = t.id; e_ring = r; e_counters = Array.make counter_slots 0 }
          in
          let rest = List.filteri (fun i _ -> i < dls_keep - 1) entries in
          cell := e :: rest;
          e)

(* -- recording ------------------------------------------------------- *)

(* 1-in-N sampling: record the first event of every window of [sample]
   per (domain, kind slot).  [sample = 1] short-circuits before any DLS
   access, so unsampled tracers pay one immediate compare. *)
let sample_hit t e kind =
  t.sample = 1
  ||
  let slot = Kind.to_int kind land (counter_slots - 1) in
  let c = e.e_counters.(slot) + 1 in
  e.e_counters.(slot) <- (if c >= t.sample then 0 else c);
  c = 1

let instant t ?(arg = 0) kind =
  if enabled t kind then begin
    let e = entry_for t in
    if sample_hit t e kind then
      Ring.record e.e_ring ~kind:(Kind.to_int kind) ~ts:(Monotonic.now_ns ())
        ~dur:(-1) ~arg
  end

let start t = if Level.spans_on t.level then Monotonic.now_ns () else 0

let stop t ?(arg = 0) kind t0 =
  if enabled t kind then begin
    let e = entry_for t in
    if sample_hit t e kind then
      Ring.record e.e_ring ~kind:(Kind.to_int kind) ~ts:t0
        ~dur:(Monotonic.now_ns () - t0)
        ~arg
  end

let record_span t ?(arg = 0) kind ~ts ~dur =
  if enabled t kind then begin
    let e = entry_for t in
    if sample_hit t e kind then
      Ring.record e.e_ring ~kind:(Kind.to_int kind) ~ts ~dur ~arg
  end

(* -- cross-shard flow events ----------------------------------------

   A mailbox message is recorded as two linked halves: a send on the
   producing domain's ring and a recv on whichever domain drained the
   owner's mailbox.  The ring stays four scalar arrays: the halves are
   distinguished by dur sentinels (-2 = send, -3 = recv; instants stay
   -1) and bound to each other by the message's sequence stamp, packed
   into the arg word together with the destination shard id so the
   exporter can both match the pair and route the recv onto the shard's
   named track.  Flow halves bypass 1-in-N sampling — dropping one half
   of a pair would leave dangling arrows, and messages are barrier-
   frequency events, not put-frequency. *)

let shard_bits = 10
let shard_mask = (1 lsl shard_bits) - 1
let shard_arg ~shard ~seq = (seq lsl shard_bits) lor (shard land shard_mask)
let arg_shard arg = arg land shard_mask
let arg_seq arg = arg lsr shard_bits

let flow_dur_send = -2
let flow_dur_recv = -3

let flow_send t ?(arg = 0) kind =
  if enabled t kind then
    Ring.record (entry_for t).e_ring ~kind:(Kind.to_int kind)
      ~ts:(Monotonic.now_ns ()) ~dur:flow_dur_send ~arg

let flow_recv t ?(arg = 0) kind =
  if enabled t kind then
    Ring.record (entry_for t).e_ring ~kind:(Kind.to_int kind)
      ~ts:(Monotonic.now_ns ()) ~dur:flow_dur_recv ~arg

let span t ?arg kind f =
  if enabled t kind then begin
    let t0 = Monotonic.now_ns () in
    Fun.protect f ~finally:(fun () -> stop t ?arg kind t0)
  end
  else f ()

(* -- custom kinds ---------------------------------------------------- *)

let register_kind t name =
  Mutex.lock t.reg_mutex;
  let k =
    let rec find i = function
      | [] ->
          t.custom <- name :: t.custom;
          t.n_custom <- t.n_custom + 1;
          Kind.custom (t.n_custom - 1)
      | n :: _ when n = name -> Kind.custom i
      | _ :: tl -> find (i - 1) tl
    in
    (* [custom] is newest-first: the head has the highest index. *)
    find (t.n_custom - 1) t.custom
  in
  Mutex.unlock t.reg_mutex;
  k

let kind_name t k =
  match Kind.builtin_name k with
  | Some n -> n
  | None ->
      let i = k - Kind.builtin_count in
      if i >= 0 && i < t.n_custom then List.nth t.custom (t.n_custom - 1 - i)
      else Printf.sprintf "kind-%d" k

(* -- reading --------------------------------------------------------- *)

let rings t =
  Mutex.lock t.reg_mutex;
  let rs = List.rev t.rings in
  Mutex.unlock t.reg_mutex;
  rs

let dropped t = List.fold_left (fun acc r -> acc + Ring.dropped r) 0 (rings t)

let events t f =
  List.iter
    (fun r ->
      let tid = Ring.tid r in
      Ring.iter r (fun ~kind ~ts ~dur ~arg -> f ~tid ~kind ~ts ~dur ~arg))
    (rings t)

(* Per-kind totals across every ring: (name, events, total span ns).
   Instants count events only.  Order: builtin kinds first, then custom
   registration order. *)
let aggregate t =
  let slots = Kind.builtin_count + t.n_custom in
  let count = Array.make slots 0 and total = Array.make slots 0 in
  events t (fun ~tid:_ ~kind ~ts:_ ~dur ~arg:_ ->
      if kind < slots then begin
        count.(kind) <- count.(kind) + 1;
        if dur > 0 then total.(kind) <- total.(kind) + dur
      end);
  let rows = ref [] in
  for k = slots - 1 downto 0 do
    if count.(k) > 0 then
      rows := (kind_name t k, count.(k), total.(k)) :: !rows
  done;
  !rows
