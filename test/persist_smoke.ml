(* Kill-based crash-recovery smoke test, run via the @persist-smoke
   dune alias (pulled into @runtest and CI).

   The parent re-executes itself as a child process pointed at a fresh
   persistence directory.  The child feeds, drains, checkpoints, feeds
   more — then SIGKILLs itself from *inside* a drain (an external-action
   handler fires mid-step), the harshest crash point: the WAL holds
   committed feed records with no covering watermark.  The parent then
   restores the directory and requires every digest (Gamma, class
   sequence, output stream) and the full output list to equal an
   uninterrupted in-process run of the same schedule. *)

open Jstar_core
open Jstar_persist

let v_int i = Value.Int i

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("persist-smoke: " ^ s);
      exit 1)
    fmt

(* -- the program ----------------------------------------------------- *)

type prog = { p : Program.t; edge : Schema.t; boom : Schema.t }

let build ~kill =
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let path =
    Program.table p "Path"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Path" ]
      ()
  in
  let boom =
    Program.table p "Boom" ~columns:Schema.[ int_col "n" ]
      ~orderby:Schema.[ Lit "Boom" ]
      ()
  in
  Program.order p [ "Edge"; "Path"; "Boom" ];
  Program.rule p "seed" ~trigger:edge (fun ctx e ->
      ctx.Rule.put (Tuple.make path [| Tuple.get e 0; Tuple.get e 1 |]));
  Program.rule p "close" ~trigger:path (fun ctx t ->
      let x = Tuple.get t 0 and y = Tuple.int t "b" in
      Query.iter ctx edge ~prefix:[| v_int y |] (fun e ->
          ctx.Rule.put (Tuple.make path [| x; Tuple.get e 1 |])));
  Program.output p path (fun t ->
      Printf.sprintf "path %d %d" (Tuple.int t "a") (Tuple.int t "b"));
  Program.action p boom (fun _ctx _t ->
      if kill then Unix.kill (Unix.getpid ()) Sys.sigkill);
  { p; edge; boom }

let config = { Config.default with Config.digest = true }
let batches = [ [ (0, 1); (1, 2) ]; [ (2, 3); (3, 0) ]; [ (1, 4); (4, 5) ] ]

let edges pr es = List.map (fun (a, b) -> Tuple.make pr.edge [| v_int a; v_int b |]) es
let nth_batch i = List.nth batches i

(* -- child: run the schedule and die mid-drain ----------------------- *)

let child dir =
  let pr = build ~kill:true in
  let t, _ =
    Durable.open_ ~fsync:Wal.Always ~dir (Program.freeze pr.p) config
  in
  Durable.feed t (edges pr (nth_batch 0));
  ignore (Durable.drain t);
  Durable.checkpoint t;
  Durable.feed t (edges pr (nth_batch 1));
  ignore (Durable.drain t);
  Durable.feed t (edges pr (nth_batch 2));
  Durable.feed t [ Tuple.make pr.boom [| v_int 1 |] ];
  (* the Boom action handler SIGKILLs the process inside this drain *)
  ignore (Durable.drain t);
  exit 3 (* unreachable unless the kill failed *)

(* -- parent: crash the child, restore, compare ----------------------- *)

let digest3 result =
  match result.Engine.digest with
  | Some d -> (d.Engine.d_gamma, d.Engine.d_classes, d.Engine.d_outputs)
  | None -> die "digest missing"

let parent () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jstar-smoke-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let exe = Sys.executable_name in
  let pid =
    Unix.create_process exe
      [| exe; "--child"; dir |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  (match Unix.waitpid [] pid with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _, Unix.WEXITED c -> die "child exited %d instead of dying mid-drain" c
  | _, _ -> die "child ended unexpectedly");
  (* restore: snapshot gen 1 + a WAL whose tail is feeds without a
     watermark *)
  let pr = build ~kill:false in
  let t, status = Durable.open_ ~dir (Program.freeze pr.p) config in
  (match status with
  | Durable.Restored r ->
      if r.Durable.r_gen <> 1 then die "restored gen %d, expected 1" r.Durable.r_gen;
      if r.Durable.r_pending = 0 then
        die "expected the killed drain's feeds to be pending"
  | Durable.Fresh -> die "nothing restored");
  ignore (Durable.drain t);
  let restored = Durable.finish t in
  (* the uninterrupted oracle *)
  let pr2 = build ~kill:false in
  let s = Engine.start (Program.freeze pr2.p) config in
  Engine.feed s (edges pr2 (nth_batch 0));
  ignore (Engine.drain s);
  Engine.feed s (edges pr2 (nth_batch 1));
  ignore (Engine.drain s);
  Engine.feed s (edges pr2 (nth_batch 2));
  Engine.feed s [ Tuple.make pr2.boom [| v_int 1 |] ];
  ignore (Engine.drain s);
  let oracle = Engine.finish s in
  if digest3 restored <> digest3 oracle then begin
    let g, c, o = digest3 restored and g', c', o' = digest3 oracle in
    die "digest mismatch after restore: gamma %s/%s classes %s/%s outputs %s/%s"
      g g' c c' o o'
  end;
  if restored.Engine.outputs <> oracle.Engine.outputs then
    die "output streams differ after restore";
  (* scrub the scratch directory *)
  Array.iter
    (fun gen_dir ->
      let p = Filename.concat dir gen_dir in
      if Sys.is_directory p then
        Array.iter
          (fun f -> Sys.remove (Filename.concat p f))
          (Sys.readdir p)
      else Sys.remove p)
    (Sys.readdir dir);
  Array.iter
    (fun d ->
      let p = Filename.concat dir d in
      if Sys.file_exists p && Sys.is_directory p then Unix.rmdir p)
    (try Sys.readdir dir with Sys_error _ -> [||]);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  print_endline "persist-smoke OK: checkpoint, SIGKILL mid-drain, restore, digests equal"

let () =
  match Sys.argv with
  | [| _; "--child"; dir |] -> child dir
  | _ -> parent ()
