(* Provenance & explainability (PR 4): lineage completeness, derivation
   determinism across thread counts, cross-run determinism digests, the
   runtime causality-law auditor, and the provenance-off put path
   staying allocation-free. *)

open Jstar_core

let v_int i = Value.Int i

(* The thread/task-shape grid every determinism assertion runs over. *)
let configs = [ (1, false); (2, false); (2, true); (4, false); (4, true) ]

let base_config threads task_per_rule =
  let c = if threads = 1 then Config.default else Config.parallel ~threads () in
  { c with Config.task_per_rule }

(* ------------------------------------------------------------------ *)
(* Fixture: the transitive-closure program (same shape as test_props) *)

type closure = {
  c_program : Program.t;
  c_edge : Schema.t;
  c_path : Schema.t;
  c_init : Tuple.t list;
}

let closure_program edges =
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let path =
    Program.table p "Path"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Path" ]
      ()
  in
  Program.order p [ "Edge"; "Path" ];
  Program.rule p "seed" ~trigger:edge (fun ctx e ->
      ctx.Rule.put (Tuple.make path [| Tuple.get e 0; Tuple.get e 1 |]));
  Program.rule p "close" ~trigger:path (fun ctx t ->
      let x = Tuple.get t 0 and y = Tuple.int t "b" in
      Query.iter ctx edge ~prefix:[| v_int y |] (fun e ->
          ctx.Rule.put (Tuple.make path [| x; Tuple.get e 1 |])));
  Program.output p path (fun t ->
      Printf.sprintf "path %d %d" (Tuple.int t "a") (Tuple.int t "b"));
  let init =
    List.map (fun (a, b) -> Tuple.make edge [| v_int a; v_int b |]) edges
  in
  { c_program = p; c_edge = edge; c_path = path; c_init = init }

let run_closure ~threads ~task_per_rule ~f edges =
  let c = closure_program edges in
  let config =
    {
      (base_config threads task_per_rule) with
      Config.provenance = true;
      digest = true;
    }
  in
  let frozen = Program.freeze c.c_program in
  let result, gamma = Engine.run_with_gamma ~init:c.c_init frozen config in
  f c frozen result gamma

(* ------------------------------------------------------------------ *)
(* Lineage completeness + canonical-derivation determinism *)

(* Every tracked tuple must reach seed leaves, and the canonical tree of
   every final Path tuple must be identical at every thread count. *)
let prop_lineage_complete_and_deterministic =
  QCheck.Test.make
    ~name:"closure lineage is complete and schedule-independent" ~count:6
    QCheck.(
      list_of_size (Gen.int_range 1 10) (pair (int_range 0 4) (int_range 0 4)))
    (fun edges ->
      let renderings =
        List.map
          (fun (threads, task_per_rule) ->
            run_closure ~threads ~task_per_rule edges
              ~f:(fun c frozen result gamma ->
                let lineage = Option.get result.Engine.lineage in
                (match Jstar_prov.Explain.completeness_error ~lineage with
                | None -> ()
                | Some msg -> QCheck.Test.fail_reportf "incomplete: %s" msg);
                (* render every final Path tuple's canonical tree, in
                   tuple order *)
                let tuples = ref [] in
                (gamma c.c_path).Store.iter (fun t -> tuples := t :: !tuples);
                List.map
                  (fun t ->
                    match
                      Jstar_prov.Explain.derive ~lineage ~frozen t
                    with
                    | Some node -> Jstar_prov.Explain.to_string node
                    | None ->
                        QCheck.Test.fail_reportf "stored but untracked: %s"
                          (Tuple.show t))
                  (List.sort Tuple.compare !tuples)))
          configs
      in
      match renderings with
      | [] -> true
      | reference :: rest -> List.for_all (fun r -> r = reference) rest)

(* The canonical tree bottoms out in Seed leaves — never a dangling
   rule-produced node without inputs. *)
let test_closure_leaves_are_seeds () =
  run_closure ~threads:2 ~task_per_rule:false
    [ (0, 1); (1, 2); (2, 3) ]
    ~f:(fun c frozen result gamma ->
      let lineage = Option.get result.Engine.lineage in
      let rec check node =
        match node.Jstar_prov.Explain.n_children with
        | [] ->
            Alcotest.(check bool)
              (Printf.sprintf "leaf %s is a seed"
                 (Tuple.show node.Jstar_prov.Explain.n_tuple))
              true
              (node.Jstar_prov.Explain.n_kind = Jstar_prov.Explain.Seed)
        | children -> List.iter check children
      in
      (gamma c.c_path).Store.iter (fun t ->
          match Jstar_prov.Explain.derive ~lineage ~frozen t with
          | Some node -> check node
          | None -> Alcotest.fail ("untracked: " ^ Tuple.show t)))

(* ------------------------------------------------------------------ *)
(* Determinism digests *)

let digest_of result =
  match result.Engine.digest with
  | Some d -> (d.Engine.d_gamma, d.Engine.d_classes, d.Engine.d_tables)
  | None -> Alcotest.fail "digest missing"

let test_digest_closure_threads () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 4) ] in
  let digests =
    List.map
      (fun (threads, task_per_rule) ->
        run_closure ~threads ~task_per_rule edges
          ~f:(fun _ _ result _ -> digest_of result))
      configs
  in
  (match digests with
  | reference :: rest ->
      List.iter
        (fun d ->
          Alcotest.(check bool) "digest equal across configs" true
            (d = reference))
        rest
  | [] -> ());
  (* sanity: a different database digests differently *)
  let other =
    run_closure ~threads:1 ~task_per_rule:false
      [ (0, 1); (1, 2) ]
      ~f:(fun _ _ result _ -> digest_of result)
  in
  Alcotest.(check bool) "different inputs, different gamma digest" false
    (let g, _, _ = other and g', _, _ = List.hd digests in
     g = g')

let pvwatts_data =
  lazy
    (Jstar_csv.Pvwatts_data.to_bytes ~installations:1
       ~ordering:Jstar_csv.Pvwatts_data.Month_major)

let test_digest_pvwatts_threads () =
  let data = Lazy.force pvwatts_data in
  let digests =
    List.map
      (fun threads ->
        let cfg =
          { (Jstar_apps.Pvwatts.config ~threads ()) with Config.digest = true }
        in
        digest_of (Jstar_apps.Pvwatts.run ~chunks:4 ~data cfg))
      [ 1; 2; 4 ]
  in
  match digests with
  | reference :: rest ->
      List.iter
        (fun d ->
          Alcotest.(check bool) "pvwatts digest equal across threads" true
            (d = reference))
        rest
  | [] -> ()

(* Fingerprint unit laws: tuple-set digests commute, the class-sequence
   fold does not. *)
let test_fingerprint_laws () =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "a"; float_col "b"; string_col "c" ]
      ~orderby:Schema.[ Lit "T" ]
      ()
  in
  let mk a b c = Tuple.make t [| v_int a; Value.Float b; Value.Str c |] in
  let tuples = [ mk 1 2.5 "x"; mk 2 0.0 "y"; mk 3 (-1.25) "" ] in
  let digest order =
    let f = Fingerprint.create () in
    List.iter (Fingerprint.add_tuple f) order;
    f
  in
  Alcotest.(check bool) "insertion order does not matter" true
    (Fingerprint.equal (digest tuples) (digest (List.rev tuples)));
  Alcotest.(check bool) "different sets differ" false
    (Fingerprint.equal (digest tuples) (digest (List.tl tuples)));
  let seq order =
    let f = Fingerprint.create () in
    List.iter
      (fun t ->
        let lo, hi = Fingerprint.lanes (digest [ t ]) in
        Fingerprint.mix_seq f ~lo ~hi ~n:1)
      order;
    f
  in
  Alcotest.(check bool) "class sequence order matters" false
    (Fingerprint.equal (seq tuples) (seq (List.rev tuples)));
  Alcotest.(check int) "hex digest is 128 bits" 32
    (String.length (Fingerprint.hex (digest tuples)))

(* ------------------------------------------------------------------ *)
(* The runtime causality-law auditor *)

(* A rule whose body runs an aggregate over its *own* trigger table:
   the law requires aggregate reads strictly before the firing's
   timestamp, but every Path tuple shares one literal-only timestamp,
   so the scan visits tuples at = T — exactly what the auditor exists
   to catch (the static checker can't see inside a hand-written
   closure). *)
let violating_program () =
  let p = Program.create () in
  let go =
    Program.table p "Go"
      ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Go" ]
      ()
  in
  let acc =
    Program.table p "Acc"
      ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Acc" ]
      ()
  in
  Program.order p [ "Go"; "Acc" ];
  Program.rule p "emit" ~trigger:go (fun ctx t ->
      ctx.Rule.put (Tuple.make acc [| Tuple.get t 0 |]));
  Program.rule p "unsound_count" ~trigger:acc (fun ctx _ ->
      (* aggregate over the trigger's own table, at its own timestamp *)
      ignore (Query.count ctx acc ()));
  let init = List.init 4 (fun i -> Tuple.make go [| v_int i |]) in
  (p, init)

let auditor_catches threads () =
  let p, init = violating_program () in
  let config =
    { (base_config threads false) with Config.audit_causality = true }
  in
  let violated =
    try
      ignore (Engine.run_program ~init p config);
      false
    with Engine.Causality_violation _ -> true
  in
  Alcotest.(check bool) "auditor raised Causality_violation" true violated;
  (* the same program runs quietly with the auditor off: the violation
     is a law violation, not a crash *)
  let p, init = violating_program () in
  ignore (Engine.run_program ~init p (base_config threads false))

let test_auditor_silent_on_sound_programs () =
  (* closure at 2 threads, audited *)
  let c = closure_program [ (0, 1); (1, 2); (2, 0); (1, 3) ] in
  let config = { (base_config 2 false) with Config.audit_causality = true } in
  ignore (Engine.run_program ~init:c.c_init c.c_program config);
  (* PvWatts-small, audited, with and without -noDelta *)
  let data = Lazy.force pvwatts_data in
  List.iter
    (fun no_delta ->
      let cfg =
        {
          (Jstar_apps.Pvwatts.config ~threads:2 ~no_delta ()) with
          Config.audit_causality = true;
        }
      in
      ignore (Jstar_apps.Pvwatts.run ~chunks:4 ~data cfg))
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* PvWatts: the ISSUE acceptance walk — explain a monthly tuple, same
   tree at every thread count, bottoming out in seed tuples *)

let test_pvwatts_explain_deterministic () =
  let data = Lazy.force pvwatts_data in
  let trees =
    List.map
      (fun threads ->
        let app = Jstar_apps.Pvwatts.make ~data ~chunks:4 () in
        let cfg =
          {
            (Jstar_apps.Pvwatts.config ~threads ()) with
            Config.provenance = true;
          }
        in
        let frozen = Program.freeze app.Jstar_apps.Pvwatts.program in
        let result, gamma =
          Engine.run_with_gamma ~init:app.Jstar_apps.Pvwatts.init frozen cfg
        in
        let lineage = Option.get result.Engine.lineage in
        (match Jstar_prov.Explain.completeness_error ~lineage with
        | None -> ()
        | Some msg -> Alcotest.fail ("pvwatts lineage incomplete: " ^ msg));
        let monthly = ref None in
        (gamma app.Jstar_apps.Pvwatts.sum_table).Store.iter_prefix
          [| v_int 2012; v_int 1 |]
          (fun t -> if !monthly = None then monthly := Some t);
        match !monthly with
        | None -> Alcotest.fail "no SumMonth(2012, 1) tuple stored"
        | Some t -> (
            match Jstar_prov.Explain.derive ~lineage ~frozen t with
            | Some node -> Jstar_prov.Explain.to_string node
            | None -> Alcotest.fail "monthly tuple untracked"))
      [ 1; 2; 4 ]
  in
  match trees with
  | reference :: rest ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "tree mentions a seed leaf" true
        (contains reference "seed");
      List.iteri
        (fun i t ->
          Alcotest.(check string)
            (Printf.sprintf "tree identical at config %d" (i + 1))
            reference t)
        rest
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Explain across session feed/drain boundaries: a tuple whose
   derivation spans batches fed in different drains must still explain
   completely, with the same canonical tree at every thread count. *)

let test_explain_across_session_boundaries () =
  let trees =
    List.map
      (fun (threads, task_per_rule) ->
        let c = closure_program [] in
        let config =
          {
            (base_config threads task_per_rule) with
            Config.provenance = true;
            digest = true;
          }
        in
        let frozen = Program.freeze c.c_program in
        let s = Engine.start frozen config in
        let feed_edges es =
          Engine.feed s
            (List.map
               (fun (a, b) -> Tuple.make c.c_edge [| v_int a; v_int b |])
               es)
        in
        (* Deepest edge first: [close] joins a *new* Path against
           *stored* Edges, so feeding the chain back-to-front makes
           Path(0,3) — derived in the last drain — consume tuples fed
           in all three. *)
        feed_edges [ (2, 3) ];
        ignore (Engine.drain s);
        feed_edges [ (1, 2) ];
        ignore (Engine.drain s);
        feed_edges [ (0, 1) ];
        ignore (Engine.drain s);
        let gamma = Engine.session_gamma s c.c_path in
        let tuples = ref [] in
        gamma.Store.iter (fun t -> tuples := t :: !tuples);
        let result = Engine.finish s in
        let lineage = Option.get result.Engine.lineage in
        (match Jstar_prov.Explain.completeness_error ~lineage with
        | None -> ()
        | Some msg ->
            Alcotest.fail ("session lineage incomplete: " ^ msg));
        List.map
          (fun t ->
            match Jstar_prov.Explain.derive ~lineage ~frozen t with
            | Some node -> Jstar_prov.Explain.to_string node
            | None -> Alcotest.fail ("stored but untracked: " ^ Tuple.show t))
          (List.sort Tuple.compare !tuples))
      configs
  in
  match trees with
  | reference :: rest ->
      Alcotest.(check int)
        "all six paths derived across the three drains" 6
        (List.length reference);
      List.iteri
        (fun i t ->
          Alcotest.(check bool)
            (Printf.sprintf "session trees identical at config %d" (i + 1))
            true (t = reference))
        rest
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Per-rule opt-out: [~provenance:false] rules leave no lineage, other
   rules' capture is unaffected, and completeness still holds for what
   *is* tracked. *)

let test_rule_provenance_optout () =
  let build ~optout =
    let c = closure_program [ (0, 1); (1, 2) ] in
    let flag =
      Program.table c.c_program "Flag"
        ~columns:Schema.[ int_col "a"; int_col "b" ]
        ~orderby:Schema.[ Lit "Flag" ]
        ()
    in
    Program.order c.c_program [ "Edge"; "Path"; "Flag" ];
    Program.rule c.c_program "flag" ~provenance:(not optout) ~trigger:c.c_path
      (fun ctx t ->
        ctx.Rule.put (Tuple.make flag [| Tuple.get t 0; Tuple.get t 1 |]));
    (c, flag)
  in
  let run ~optout =
    let c, flag = build ~optout in
    let config = { Config.default with Config.provenance = true } in
    let frozen = Program.freeze c.c_program in
    let result, gamma = Engine.run_with_gamma ~init:c.c_init frozen config in
    let lineage = Option.get result.Engine.lineage in
    (c, flag, frozen, lineage, gamma)
  in
  let c, flag, frozen, lineage, gamma = run ~optout:true in
  (match Jstar_prov.Explain.completeness_error ~lineage with
  | None -> ()
  | Some msg -> Alcotest.fail ("optout lineage incomplete: " ^ msg));
  (* Path tuples (tracked rules) still explain... *)
  (gamma c.c_path).Store.iter (fun t ->
      match Jstar_prov.Explain.derive ~lineage ~frozen t with
      | Some _ -> ()
      | None -> Alcotest.fail ("tracked rule lost lineage: " ^ Tuple.show t));
  (* ...while the opted-out rule's tuples are stored but untracked. *)
  (gamma flag).Store.iter (fun t ->
      match Jstar_prov.Explain.derive ~lineage ~frozen t with
      | None -> ()
      | Some _ ->
          Alcotest.fail ("opted-out rule left lineage: " ^ Tuple.show t));
  let tracked_optout = Lineage.tuples_tracked lineage in
  let _, _, _, lineage_full, _ = run ~optout:false in
  Alcotest.(check bool) "opting out shrinks the lineage store" true
    (tracked_optout < Lineage.tuples_tracked lineage_full)

(* ------------------------------------------------------------------ *)
(* Output-stream digest: print-ordered, schedule-independent *)

let test_outputs_digest_threads () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 4) ] in
  let d_out result =
    match result.Engine.digest with
    | Some d -> d.Engine.d_outputs
    | None -> Alcotest.fail "digest missing"
  in
  let digests =
    List.map
      (fun (threads, task_per_rule) ->
        run_closure ~threads ~task_per_rule edges ~f:(fun _ _ result _ ->
            (d_out result, result.Engine.outputs)))
      configs
  in
  (match digests with
  | (reference, ref_outputs) :: rest ->
      List.iter
        (fun (d, outs) ->
          Alcotest.(check string) "output digest equal across configs"
            reference d;
          Alcotest.(check bool) "output stream equal across configs" true
            (outs = ref_outputs))
        rest
  | [] -> ());
  let other =
    run_closure ~threads:1 ~task_per_rule:false
      [ (0, 1) ]
      ~f:(fun _ _ result _ -> d_out result)
  in
  Alcotest.(check bool) "different outputs, different stream digest" false
    (other = fst (List.hd digests))

(* ------------------------------------------------------------------ *)
(* Provenance off: the duplicate-put hot path still allocates nothing *)

let test_put_path_zero_alloc_prov_off () =
  let p = Program.create () in
  let data =
    Program.table p "Data"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "A" ]
      ()
  in
  let go =
    Program.table p "Go"
      ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "B" ]
      ()
  in
  Program.order p [ "A"; "B" ];
  let dup = Tuple.make data [| v_int 1; v_int 2 |] in
  let baseline = ref 0.0 and puts = ref 0.0 in
  let minor_delta f =
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  Program.rule p "measure" ~trigger:go (fun ctx _ ->
      baseline :=
        minor_delta (fun () ->
            for _ = 1 to 10_000 do
              ignore (Sys.opaque_identity dup)
            done);
      puts :=
        minor_delta (fun () ->
            for _ = 1 to 10_000 do
              ignore (Sys.opaque_identity dup);
              ctx.Rule.put dup
            done));
  let init = [ dup; Tuple.make go [| v_int 0 |] ] in
  (* all PR-4 knobs at their defaults: provenance, audit and digest off *)
  ignore (Engine.run_program ~init p Config.default);
  Alcotest.(check (float 0.0))
    "duplicate put allocates nothing with provenance off" !baseline !puts

(* ------------------------------------------------------------------ *)
(* Config validation *)

let test_config_validation () =
  let invalid c =
    match Config.validate c with
    | () -> false
    | exception Config.Invalid _ -> true
  in
  Alcotest.(check bool) "trace_sample 0 rejected" true
    (invalid { Config.default with Config.trace_sample = 0 });
  Alcotest.(check bool) "trace_sample -3 rejected" true
    (invalid { Config.default with Config.trace_sample = -3 });
  Alcotest.(check bool) "trace_sample 50 accepted" false
    (invalid { Config.default with Config.trace_sample = 50 });
  Alcotest.(check bool) "provenance + audit + digest accepted" false
    (invalid
       {
         (Config.parallel ~threads:4 ()) with
         Config.provenance = true;
         audit_causality = true;
         digest = true;
       })

let suite =
  [
    ( "prov",
      [
        QCheck_alcotest.to_alcotest prop_lineage_complete_and_deterministic;
        Alcotest.test_case "derivations bottom out in seeds" `Quick
          test_closure_leaves_are_seeds;
        Alcotest.test_case "closure digests agree across configs" `Quick
          test_digest_closure_threads;
        Alcotest.test_case "pvwatts digests agree across threads" `Slow
          test_digest_pvwatts_threads;
        Alcotest.test_case "fingerprint laws" `Quick test_fingerprint_laws;
        Alcotest.test_case "auditor catches violation (seq)" `Quick
          (auditor_catches 1);
        Alcotest.test_case "auditor catches violation (par)" `Quick
          (auditor_catches 4);
        Alcotest.test_case "auditor silent on sound programs" `Slow
          test_auditor_silent_on_sound_programs;
        Alcotest.test_case "pvwatts explain tree deterministic" `Slow
          test_pvwatts_explain_deterministic;
        Alcotest.test_case "explain across session feed/drain boundaries"
          `Quick test_explain_across_session_boundaries;
        Alcotest.test_case "per-rule provenance opt-out" `Quick
          test_rule_provenance_optout;
        Alcotest.test_case "output-stream digest across configs" `Quick
          test_outputs_digest_threads;
        Alcotest.test_case "zero-alloc put path, provenance off" `Quick
          test_put_path_zero_alloc_prov_off;
        Alcotest.test_case "config validation" `Quick test_config_validation;
      ] );
  ]
