(* Shared-nothing sharded execution (PR 8): with [Config.shards = n]
   the Delta and Gamma are partitioned into n single-owner shards and
   remote-owned puts ship through per-shard mailboxes.  The mode is a
   pure execution strategy: digests, output stream, per-table stats,
   delta totals and explain trees must be bit-identical to the
   unsharded engine across the shards x threads x batch_fire grid —
   including durable-session feed/drain/recover round-trips. *)

open Jstar_core

let v_int i = Value.Int i

(* ------------------------------------------------------------------ *)
(* Fixture: transitive closure plus a negative rule (sinks: nodes with
   no outgoing edge) and an aggregate rule (out-degrees), so sharded
   runs exercise the positive hash-join probe, the vectorized
   negative-scan path and the aggregate cache in one program. *)

type fixture = {
  x_program : Program.t;
  x_edge : Schema.t;
  x_path : Schema.t;
}

let closure_fixture () =
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let path =
    Program.table p "Path"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Path" ]
      ()
  in
  let sink =
    Program.table p "Sink"
      ~columns:Schema.[ int_col "n" ]
      ~orderby:Schema.[ Lit "Sink" ]
      ()
  in
  let deg =
    Program.table p "Deg"
      ~columns:Schema.[ int_col "n"; int_col "d" ]
      ~orderby:Schema.[ Lit "Deg" ]
      ()
  in
  Program.order p [ "Edge"; "Path"; "Sink"; "Deg" ];
  Program.rule p "seed" ~trigger:edge (fun ctx e ->
      ctx.Rule.put (Tuple.make path [| Tuple.get e 0; Tuple.get e 1 |]));
  Program.rule p "close" ~trigger:path
    ~reads:[ Spec.read ~prefix:[ Spec.Field "b" ] "Edge" ]
    (fun ctx t ->
      let x = Tuple.get t 0 and y = Tuple.int t "b" in
      Query.iter ctx edge ~prefix:[| v_int y |] (fun e ->
          ctx.Rule.put (Tuple.make path [| x; Tuple.get e 1 |])));
  Program.rule p "sink" ~trigger:path
    ~reads:[ Spec.read ~kind:Spec.Negative ~prefix:[ Spec.Field "b" ] "Edge" ]
    (fun ctx t ->
      let b = Tuple.int t "b" in
      if Query.count ctx edge ~prefix:[| v_int b |] () = 0 then
        ctx.Rule.put (Tuple.make sink [| v_int b |]));
  Program.rule p "degree" ~trigger:path
    ~reads:[ Spec.read ~kind:Spec.Aggregate ~prefix:[ Spec.Field "a" ] "Edge" ]
    (fun ctx t ->
      let a = Tuple.int t "a" in
      let d = Query.count ctx edge ~prefix:[| v_int a |] () in
      ctx.Rule.put (Tuple.make deg [| v_int a; v_int d |]));
  Program.output p path (fun t ->
      Printf.sprintf "path %d %d" (Tuple.int t "a") (Tuple.int t "b"));
  Program.output p sink (fun t -> Printf.sprintf "sink %d" (Tuple.int t "n"));
  { x_program = p; x_edge = edge; x_path = path }

let edge_tuples fx edges =
  List.map (fun (a, b) -> Tuple.make fx.x_edge [| v_int a; v_int b |]) edges

(* The grid: the (shards = 0, 1 thread, per-tuple) oracle first, then
   every interesting combination — shards without threads, threads
   without shards, both, shard count above and below the thread
   count, and the batch/per-tuple firing split. *)
let grid =
  [
    (0, 1, false);
    (0, 2, true);
    (1, 1, false);
    (1, 2, true);
    (2, 1, false);
    (2, 1, true);
    (2, 2, false);
    (2, 2, true);
    (2, 4, true);
    (4, 2, true);
    (4, 4, true);
  ]

let shard_config ~shards ~threads ~batch_fire =
  let c =
    if threads = 1 then Config.default else Config.parallel ~threads ()
  in
  {
    c with
    Config.shards;
    batch_fire;
    put_batching = batch_fire;
    (* [Config.parallel] flips the aggregate cache on and [default]
       leaves it off, which legitimately changes the per-table query
       counters; pin it so the grid varies only shards/threads/firing *)
    agg_cache = true;
    indexes = [ ("Edge", [ 1 ]) ];
    provenance = true;
    audit_causality = true;
    digest = true;
  }

type observation = {
  o_digest : (string * string * string * (string * string) list) option;
  o_outputs : string list;
  o_stats : Table_stats.snapshot list;
  o_delta : int * int;
}

let observe result =
  {
    o_digest =
      Option.map
        (fun d ->
          ( d.Engine.d_gamma,
            d.Engine.d_classes,
            d.Engine.d_outputs,
            d.Engine.d_tables ))
        result.Engine.digest;
    o_outputs = result.Engine.outputs;
    o_stats = Table_stats.snapshot result.Engine.stats;
    o_delta = (result.Engine.delta_inserted, result.Engine.delta_deduped);
  }

let check_grid_equal ~msg observations =
  match observations with
  | [] -> ()
  | reference :: rest ->
      List.iteri
        (fun i o ->
          let at what =
            Printf.sprintf "%s: %s at grid point %d" msg what (i + 1)
          in
          Alcotest.(check bool) (at "digests") true (o.o_digest = reference.o_digest);
          Alcotest.(check bool) (at "outputs") true (o.o_outputs = reference.o_outputs);
          Alcotest.(check bool) (at "stats") true (o.o_stats = reference.o_stats);
          Alcotest.(check bool) (at "delta totals") true
            (o.o_delta = reference.o_delta))
        rest

(* ------------------------------------------------------------------ *)
(* Whole-run equivalence across the grid *)

let run_point edges (shards, threads, batch_fire) =
  let fx = closure_fixture () in
  let config = shard_config ~shards ~threads ~batch_fire in
  observe
    (Engine.run_program ~init:(edge_tuples fx edges) fx.x_program config)

let test_shards_grid () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 4); (4, 2); (2, 5) ] in
  check_grid_equal ~msg:"closure" (List.map (run_point edges) grid);
  (* sanity: not vacuously equal *)
  let o = run_point edges (2, 2, true) in
  Alcotest.(check bool) "digest present" true (o.o_digest <> None);
  Alcotest.(check bool) "outputs present" true (o.o_outputs <> [])

let prop_shards_grid =
  QCheck.Test.make ~name:"sharded == unsharded on random graphs" ~count:6
    QCheck.(
      list_of_size (Gen.int_range 1 25) (pair (int_range 0 7) (int_range 0 7)))
    (fun edges ->
      let oracle = run_point edges (0, 1, false) in
      List.for_all
        (fun point -> run_point edges point = oracle)
        [ (2, 1, false); (2, 2, true); (4, 2, true) ])

(* ------------------------------------------------------------------ *)
(* Explain trees: lineage merged from sharded firings must derive the
   same canonical trees as the unsharded run. *)

let test_shards_explain () =
  let edges = [ (0, 1); (1, 2); (1, 3); (3, 0) ] in
  let trees_at (shards, threads, batch_fire) =
    let fx = closure_fixture () in
    let config = shard_config ~shards ~threads ~batch_fire in
    let frozen = Program.freeze fx.x_program in
    let result, gamma =
      Engine.run_with_gamma ~init:(edge_tuples fx edges) frozen config
    in
    let lineage = Option.get result.Engine.lineage in
    (match Jstar_prov.Explain.completeness_error ~lineage with
    | None -> ()
    | Some msg -> Alcotest.fail ("lineage incomplete: " ^ msg));
    let tuples = ref [] in
    (gamma fx.x_path).Store.iter (fun t -> tuples := t :: !tuples);
    List.map
      (fun t ->
        match Jstar_prov.Explain.derive ~lineage ~frozen t with
        | Some node -> Jstar_prov.Explain.to_string node
        | None -> Alcotest.fail ("stored but untracked: " ^ Tuple.show t))
      (List.sort Tuple.compare !tuples)
  in
  let reference = trees_at (0, 1, false) in
  Alcotest.(check bool) "trees nonempty" true (reference <> []);
  List.iter
    (fun point ->
      Alcotest.(check bool) "sharded explain trees == unsharded" true
        (trees_at point = reference))
    [ (2, 1, false); (2, 2, true); (4, 2, true) ]

(* ------------------------------------------------------------------ *)
(* Sessions: feed/drain under sharding matches the oracle, and the
   monitoring-lane accessor reports a quiesced shard plane. *)

let test_shards_session () =
  let observations =
    List.map
      (fun ((shards, threads, batch_fire) as point) ->
        let fx = closure_fixture () in
        let config = shard_config ~shards ~threads ~batch_fire in
        let s = Engine.start (Program.freeze fx.x_program) config in
        Engine.feed s (edge_tuples fx [ (2, 3); (3, 4) ]);
        ignore (Engine.drain s);
        (match Engine.session_shards s with
        | Some st ->
            Alcotest.(check int) "shard count" (max shards 1) st.Engine.sh_count;
            Alcotest.(check bool) "mailboxes drained at quiescence" true
              (Array.for_all (( = ) 0) st.Engine.sh_backlog);
            Alcotest.(check bool) "occupancy empty at quiescence" true
              (Array.for_all (( = ) 0) st.Engine.sh_occupancy);
            Alcotest.(check bool) "messages were posted" true
              (st.Engine.sh_msgs_posted > 0)
        | None ->
            let shards, _, _ = point in
            Alcotest.(check int) "no shard plane when unsharded" 0 shards);
        Engine.feed s (edge_tuples fx [ (0, 1); (1, 2) ]);
        ignore (Engine.drain s);
        observe (Engine.finish s))
      grid
  in
  check_grid_equal ~msg:"session" observations

(* ------------------------------------------------------------------ *)
(* Durable sessions: WAL + snapshot + recovery with sharding on.  A
   sharded durable session is checkpointed, reopened (recovery replays
   the WAL against a fresh sharded engine) and run to completion; its
   digests must match an uninterrupted unsharded oracle fed the same
   schedule. *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jstar-shards-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let test_shards_durable () =
  let batches = [ [ (0, 1); (1, 2) ]; [ (2, 3); (1, 4) ]; [ (4, 2); (2, 0) ] ] in
  (* unsharded, non-durable oracle over the full schedule *)
  let oracle =
    let fx = closure_fixture () in
    let s =
      Engine.start (Program.freeze fx.x_program)
        (shard_config ~shards:0 ~threads:1 ~batch_fire:false)
    in
    List.iter
      (fun b ->
        Engine.feed s (edge_tuples fx b);
        ignore (Engine.drain s))
      batches;
    observe (Engine.finish s)
  in
  let dir = fresh_dir () in
  let fx = closure_fixture () in
  let frozen = Program.freeze fx.x_program in
  let config = shard_config ~shards:2 ~threads:2 ~batch_fire:true in
  (* first incarnation: two batches, checkpoint, shut down *)
  let d, status = Jstar_persist.Durable.open_ ~dir frozen config in
  (match status with
  | Jstar_persist.Durable.Fresh -> ()
  | Jstar_persist.Durable.Restored _ -> Alcotest.fail "fresh dir restored");
  List.iter
    (fun b ->
      Jstar_persist.Durable.feed d (edge_tuples fx b);
      ignore (Jstar_persist.Durable.drain d))
    [ List.nth batches 0; List.nth batches 1 ];
  Jstar_persist.Durable.checkpoint d;
  ignore (Jstar_persist.Durable.finish d);
  (* second incarnation: recover sharded, finish the schedule *)
  let fx2 = closure_fixture () in
  let d2, status2 =
    Jstar_persist.Durable.open_ ~dir (Program.freeze fx2.x_program) config
  in
  (match status2 with
  | Jstar_persist.Durable.Restored info ->
      (* the checkpoint covered both drains, so recovery starts from
         the snapshot generation and replays no WAL records *)
      Alcotest.(check bool) "restored from a snapshot" true
        (info.Jstar_persist.Durable.r_gen >= 1)
  | Jstar_persist.Durable.Fresh -> Alcotest.fail "recovery found nothing");
  Jstar_persist.Durable.feed d2 (edge_tuples fx2 (List.nth batches 2));
  ignore (Jstar_persist.Durable.drain d2);
  let o = observe (Jstar_persist.Durable.finish d2) in
  Alcotest.(check bool) "sharded durable digests == unsharded oracle" true
    (o.o_digest = oracle.o_digest);
  Alcotest.(check bool) "sharded durable outputs == unsharded oracle" true
    (o.o_outputs = oracle.o_outputs)

let suite =
  [
    ( "shards",
      [
        Alcotest.test_case "closure grid: sharded == unsharded" `Quick
          test_shards_grid;
        QCheck_alcotest.to_alcotest prop_shards_grid;
        Alcotest.test_case "explain trees identical under sharding" `Quick
          test_shards_explain;
        Alcotest.test_case "session feed/drain grid" `Quick test_shards_session;
        Alcotest.test_case "durable recover round-trip sharded" `Quick
          test_shards_durable;
      ] );
  ]
