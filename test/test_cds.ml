(* Tests for the concurrent data structures: skip-list map/set semantics
   (sequential model-based + concurrent linearisability smoke tests),
   sharded hash map, Treiber stack and Michael-Scott queue. *)

module Skiplist = Jstar_cds.Skiplist
module Cset = Jstar_cds.Cset
module Chashmap = Jstar_cds.Chashmap
module Treiber_stack = Jstar_cds.Treiber_stack
module Ms_queue = Jstar_cds.Ms_queue

let icompare : int -> int -> int = compare

(* ------------------------------------------------------------------ *)
(* Skiplist: sequential semantics *)

let test_sl_empty () =
  let t = Skiplist.create ~compare:icompare () in
  Alcotest.(check bool) "is_empty" true (Skiplist.is_empty t);
  Alcotest.(check int) "length" 0 (Skiplist.length t);
  Alcotest.(check (option int)) "find" None (Skiplist.find_opt t 1);
  Alcotest.(check bool) "remove missing" false (Skiplist.remove t 1);
  Alcotest.(check (option (pair int int))) "min" None
    (Skiplist.min_binding_opt t)

let test_sl_add_find () =
  let t = Skiplist.create ~compare:icompare () in
  Alcotest.(check bool) "first add" true (Skiplist.add t 5 50);
  Alcotest.(check bool) "duplicate add" false (Skiplist.add t 5 99);
  Alcotest.(check (option int)) "value preserved" (Some 50)
    (Skiplist.find_opt t 5);
  Alcotest.(check int) "length" 1 (Skiplist.length t)

let test_sl_ordering () =
  let t = Skiplist.create ~compare:icompare () in
  let keys = [ 42; 7; 19; 3; 99; 1; 55 ] in
  List.iter (fun k -> ignore (Skiplist.add t k (k * 10))) keys;
  Alcotest.(check (list (pair int int)))
    "in-order traversal"
    (List.map (fun k -> (k, k * 10)) (List.sort compare keys))
    (Skiplist.to_list t)

let test_sl_remove () =
  let t = Skiplist.create ~compare:icompare () in
  List.iter (fun k -> ignore (Skiplist.add t k k)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "remove 3" true (Skiplist.remove t 3);
  Alcotest.(check bool) "remove 3 again" false (Skiplist.remove t 3);
  Alcotest.(check (option int)) "3 gone" None (Skiplist.find_opt t 3);
  Alcotest.(check int) "length" 4 (Skiplist.length t);
  Alcotest.(check (list int)) "order preserved" [ 1; 2; 4; 5 ]
    (List.map fst (Skiplist.to_list t))

let test_sl_min_and_pop () =
  let t = Skiplist.create ~compare:icompare () in
  List.iter (fun k -> ignore (Skiplist.add t k (-k))) [ 10; 2; 8; 2; 30 ];
  Alcotest.(check (option (pair int int))) "min" (Some (2, -2))
    (Skiplist.min_binding_opt t);
  Alcotest.(check (option (pair int int))) "pop min" (Some (2, -2))
    (Skiplist.pop_min_opt t);
  Alcotest.(check (option (pair int int))) "next min" (Some (8, -8))
    (Skiplist.pop_min_opt t);
  Alcotest.(check int) "length after pops" 2 (Skiplist.length t)

let test_sl_find_or_add () =
  let t = Skiplist.create ~compare:icompare () in
  let v1 = Skiplist.find_or_add t 7 (fun () -> "fresh") in
  let v2 = Skiplist.find_or_add t 7 (fun () -> "other") in
  Alcotest.(check string) "created" "fresh" v1;
  Alcotest.(check string) "reused" "fresh" v2;
  Alcotest.(check int) "single binding" 1 (Skiplist.length t)

let test_sl_iter_from () =
  let t = Skiplist.create ~compare:icompare () in
  List.iter (fun k -> ignore (Skiplist.add t k ())) [ 1; 3; 5; 7; 9 ];
  let seen = ref [] in
  Skiplist.iter_from t 4 (fun k () ->
      seen := k :: !seen;
      k < 8);
  Alcotest.(check (list int)) "range [4, stop after >=8]" [ 5; 7; 9 ]
    (List.rev !seen)

let test_sl_iter_from_before_all () =
  let t = Skiplist.create ~compare:icompare () in
  List.iter (fun k -> ignore (Skiplist.add t k ())) [ 10; 20 ];
  let seen = ref [] in
  Skiplist.iter_from t 0 (fun k () ->
      seen := k :: !seen;
      true);
  Alcotest.(check (list int)) "all visited" [ 10; 20 ] (List.rev !seen)

let test_sl_large_sequential () =
  let t = Skiplist.create ~compare:icompare () in
  let n = 20_000 in
  for i = 0 to n - 1 do
    ignore (Skiplist.add t ((i * 7919) mod n) i)
  done;
  (* 7919 is coprime with n, so all keys 0..n-1 get inserted. *)
  Alcotest.(check int) "all inserted" n (Skiplist.length t);
  for i = 0 to n - 1 do
    if not (Skiplist.mem t i) then Alcotest.failf "missing key %d" i
  done;
  (* remove every third key *)
  let removed = ref 0 in
  let i = ref 0 in
  while !i < n do
    if Skiplist.remove t !i then incr removed;
    i := !i + 3
  done;
  Alcotest.(check int) "removed count" ((n + 2) / 3) !removed;
  Alcotest.(check int) "length" (n - !removed) (Skiplist.length t)

(* Model-based property test: a random sequence of add/remove/find ops
   must agree with a reference stdlib Map. *)
let prop_sl_model =
  let op_gen =
    QCheck.Gen.(
      pair (int_range 0 2) (int_range 0 30) >|= fun (op, k) -> (op, k))
  in
  QCheck.Test.make ~name:"skiplist = Map model" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 200) op_gen))
    (fun ops ->
      let t = Skiplist.create ~compare:icompare () in
      let model = ref [] in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 ->
              let expected = not (List.mem_assoc k !model) in
              let got = Skiplist.add t k (k * 2) in
              if expected then model := (k, k * 2) :: !model;
              got = expected
          | 1 ->
              let expected = List.mem_assoc k !model in
              let got = Skiplist.remove t k in
              if expected then model := List.remove_assoc k !model;
              got = expected
          | _ ->
              Skiplist.find_opt t k
              = List.assoc_opt k !model)
        ops
      && Skiplist.to_list t
         = List.sort compare !model)

(* Concurrent smoke test: disjoint key ranges inserted from several
   domains must all land, stay ordered and deduplicated. *)
let test_sl_concurrent_inserts () =
  let t = Skiplist.create ~compare:icompare () in
  let per_domain = 5_000 and domains = 4 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              ignore (Skiplist.add t ((i * domains) + d) i)
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "all inserted" (per_domain * domains)
    (Skiplist.length t);
  let prev = ref (-1) in
  Skiplist.iter t (fun k _ ->
      if k <= !prev then Alcotest.failf "out of order at %d" k;
      prev := k)

(* Concurrent duplicate race: all domains insert the same keys; each key
   must be inserted exactly once overall. *)
let test_sl_concurrent_duplicates () =
  let t = Skiplist.create ~compare:icompare () in
  let keys = 2_000 and domains = 4 in
  let wins = Array.init domains (fun _ -> ref 0) in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for k = 0 to keys - 1 do
              if Skiplist.add t k d then incr wins.(d)
            done))
  in
  List.iter Domain.join workers;
  let total_wins = Array.fold_left (fun acc r -> acc + !r) 0 wins in
  Alcotest.(check int) "each key inserted exactly once" keys total_wins;
  Alcotest.(check int) "length" keys (Skiplist.length t)

(* Concurrent pop_min consumers must drain the map without duplication. *)
let test_sl_concurrent_pop_min () =
  let t = Skiplist.create ~compare:icompare () in
  let n = 5_000 in
  for i = 0 to n - 1 do
    ignore (Skiplist.add t i i)
  done;
  let results = Array.init 3 (fun _ -> ref []) in
  let workers =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            let rec go () =
              match Skiplist.pop_min_opt t with
              | Some (k, _) ->
                  results.(d) := k :: !(results.(d));
                  go ()
              | None -> ()
            in
            go ()))
  in
  List.iter Domain.join workers;
  let all = List.concat_map (fun r -> !r) (Array.to_list results) in
  Alcotest.(check int) "drained exactly n" n (List.length all);
  Alcotest.(check bool) "no duplicates" true
    (List.sort compare all = List.init n Fun.id);
  (* each consumer's own stream must be increasing (it popped minima) *)
  Array.iter
    (fun r ->
      let stream = List.rev !r in
      ignore
        (List.fold_left
           (fun prev k ->
             if k <= prev then Alcotest.failf "non-monotonic pop at %d" k;
             k)
           (-1) stream))
    results

(* ------------------------------------------------------------------ *)
(* Cset *)

let test_cset_basics () =
  let s = Cset.create ~compare:icompare () in
  Alcotest.(check bool) "add new" true (Cset.add s 3);
  Alcotest.(check bool) "add dup" false (Cset.add s 3);
  ignore (Cset.add s 1);
  ignore (Cset.add s 2);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Cset.to_list s);
  Alcotest.(check (option int)) "min" (Some 1) (Cset.min_elt_opt s);
  Alcotest.(check (option int)) "pop" (Some 1) (Cset.pop_min_opt s);
  Alcotest.(check bool) "mem 2" true (Cset.mem s 2);
  Alcotest.(check bool) "remove" true (Cset.remove s 2);
  Alcotest.(check int) "length" 1 (Cset.length s)

let test_cset_add_batch () =
  let s = Cset.create ~compare:icompare () in
  ignore (Cset.add s 5);
  (* fresh, in-batch dup (first wins), dup of pre-inserted, fresh *)
  let res = Cset.add_batch s [| 1; 1; 5; 3 |] in
  Alcotest.(check (array bool)) "dedup flags" [| true; false; false; true |] res;
  Alcotest.(check (list int)) "set contents" [ 1; 3; 5 ] (Cset.to_list s);
  let empty = Cset.add_batch s [||] in
  Alcotest.(check int) "empty batch" 0 (Array.length empty);
  Alcotest.(check int) "length unchanged" 3 (Cset.length s)

let test_cset_range () =
  let s = Cset.create ~compare:icompare () in
  List.iter (fun x -> ignore (Cset.add s x)) [ 2; 4; 6; 8 ];
  let seen = ref [] in
  Cset.iter_from s 3 (fun x ->
      seen := x :: !seen;
      true);
  Alcotest.(check (list int)) "from 3" [ 4; 6; 8 ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Chashmap *)

let test_chm_basics () =
  let m = Chashmap.create () in
  Alcotest.(check bool) "empty" true (Chashmap.is_empty m);
  Chashmap.set m "a" 1;
  Chashmap.set m "a" 2;
  Alcotest.(check (option int)) "overwrite" (Some 2) (Chashmap.find_opt m "a");
  Alcotest.(check bool) "add_if_absent dup" false
    (Chashmap.add_if_absent m "a" 9);
  Alcotest.(check bool) "add_if_absent new" true
    (Chashmap.add_if_absent m "b" 3);
  Alcotest.(check int) "length" 2 (Chashmap.length m);
  Alcotest.(check bool) "remove" true (Chashmap.remove m "a");
  Alcotest.(check bool) "remove gone" false (Chashmap.remove m "a")

let test_chm_find_or_add () =
  let m = Chashmap.create ~shards:4 () in
  let calls = ref 0 in
  let v1 =
    Chashmap.find_or_add m 42 (fun () ->
        incr calls;
        "x")
  in
  let v2 = Chashmap.find_or_add m 42 (fun () -> failwith "must not run") in
  Alcotest.(check string) "first" "x" v1;
  Alcotest.(check string) "second" "x" v2;
  Alcotest.(check int) "mk called once" 1 !calls

let test_chm_update () =
  let m = Chashmap.create () in
  Chashmap.update m "k" (function None -> Some 1 | Some _ -> assert false);
  Chashmap.update m "k" (function Some v -> Some (v + 10) | None -> None);
  Alcotest.(check (option int)) "updated" (Some 11) (Chashmap.find_opt m "k");
  Chashmap.update m "k" (fun _ -> None);
  Alcotest.(check (option int)) "deleted" None (Chashmap.find_opt m "k")

let test_chm_iter_reentrant () =
  let m = Chashmap.create ~shards:2 () in
  for i = 0 to 9 do
    Chashmap.set m i (i * i)
  done;
  (* The callback reads the map: must not deadlock. *)
  let total = ref 0 in
  Chashmap.iter m (fun k _ ->
      match Chashmap.find_opt m k with
      | Some v -> total := !total + v
      | None -> ());
  Alcotest.(check int) "sum of squares" 285 !total

let test_chm_concurrent () =
  let m = Chashmap.create () in
  let per_domain = 10_000 and domains = 4 in
  let winners = Array.init domains (fun _ -> ref 0) in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              if Chashmap.add_if_absent m i d then incr winners.(d)
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "each key once"
    per_domain
    (Array.fold_left (fun acc r -> acc + !r) 0 winners);
  Alcotest.(check int) "length" per_domain (Chashmap.length m)

let prop_chm_model =
  QCheck.Test.make ~name:"chashmap = assoc model" ~count:200
    QCheck.(list (pair (int_range 0 3) (int_range 0 20)))
    (fun ops ->
      let m = Chashmap.create ~shards:2 () in
      let model = ref [] in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 ->
              Chashmap.set m k (k * 3);
              model := (k, k * 3) :: List.remove_assoc k !model;
              true
          | 1 ->
              let expected = List.mem_assoc k !model in
              let got = Chashmap.remove m k in
              model := List.remove_assoc k !model;
              got = expected
          | 2 -> Chashmap.find_opt m k = List.assoc_opt k !model
          | _ ->
              let expected = not (List.mem_assoc k !model) in
              let got = Chashmap.add_if_absent m k (k * 3) in
              if expected then model := (k, k * 3) :: !model;
              got = expected)
        ops
      && Chashmap.length m = List.length !model)

(* ------------------------------------------------------------------ *)
(* Treiber stack *)

let test_stack_lifo () =
  let s = Treiber_stack.create () in
  Alcotest.(check bool) "empty" true (Treiber_stack.is_empty s);
  Treiber_stack.push s 1;
  Treiber_stack.push s 2;
  Alcotest.(check (option int)) "pop 2" (Some 2) (Treiber_stack.pop s);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Treiber_stack.pop s);
  Alcotest.(check (option int)) "pop empty" None (Treiber_stack.pop s)

let test_stack_pop_all () =
  let s = Treiber_stack.create () in
  List.iter (Treiber_stack.push s) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "newest first" [ 3; 2; 1 ]
    (Treiber_stack.pop_all s);
  Alcotest.(check bool) "emptied" true (Treiber_stack.is_empty s)

let test_stack_concurrent () =
  let s = Treiber_stack.create () in
  let per_domain = 20_000 and domains = 4 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Treiber_stack.push s ((i * domains) + d)
            done))
  in
  List.iter Domain.join workers;
  let all = Treiber_stack.pop_all s in
  Alcotest.(check int) "all pushed" (per_domain * domains) (List.length all);
  Alcotest.(check bool) "distinct" true
    (List.sort compare all = List.init (per_domain * domains) Fun.id)

(* ------------------------------------------------------------------ *)
(* Michael-Scott queue *)

let test_queue_fifo () =
  let q = Ms_queue.create () in
  Alcotest.(check bool) "empty" true (Ms_queue.is_empty q);
  Ms_queue.push q "a";
  Ms_queue.push q "b";
  Alcotest.(check (option string)) "pop a" (Some "a") (Ms_queue.pop q);
  Alcotest.(check (option string)) "pop b" (Some "b") (Ms_queue.pop q);
  Alcotest.(check (option string)) "pop empty" None (Ms_queue.pop q)

let test_queue_drain () =
  let q = Ms_queue.create () in
  List.iter (Ms_queue.push q) [ 1; 2; 3 ];
  let seen = ref [] in
  Ms_queue.drain q (fun v -> seen := v :: !seen);
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !seen);
  Alcotest.(check bool) "drained" true (Ms_queue.is_empty q)

let test_queue_mpmc () =
  let q = Ms_queue.create () in
  let per_domain = 10_000 in
  let producers =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Ms_queue.push q ((i * 2) + d)
            done))
  in
  let consumed = Array.init 2 (fun _ -> ref []) in
  let done_producing = Atomic.make false in
  let consumers =
    List.init 2 (fun c ->
        Domain.spawn (fun () ->
            let rec go () =
              match Ms_queue.pop q with
              | Some v ->
                  consumed.(c) := v :: !(consumed.(c));
                  go ()
              | None -> if Atomic.get done_producing then () else go ()
            in
            go ()))
  in
  List.iter Domain.join producers;
  Atomic.set done_producing true;
  List.iter Domain.join consumers;
  let all = List.concat_map (fun r -> !r) (Array.to_list consumed) in
  Alcotest.(check int) "nothing lost" (2 * per_domain) (List.length all);
  Alcotest.(check bool) "nothing duplicated" true
    (List.sort compare all = List.init (2 * per_domain) Fun.id)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "cds.skiplist",
      [
        tc "empty map" `Quick test_sl_empty;
        tc "add and find" `Quick test_sl_add_find;
        tc "ordered traversal" `Quick test_sl_ordering;
        tc "remove" `Quick test_sl_remove;
        tc "min and pop_min" `Quick test_sl_min_and_pop;
        tc "find_or_add" `Quick test_sl_find_or_add;
        tc "iter_from mid" `Quick test_sl_iter_from;
        tc "iter_from before all" `Quick test_sl_iter_from_before_all;
        tc "20k keys sequential" `Quick test_sl_large_sequential;
        QCheck_alcotest.to_alcotest prop_sl_model;
        tc "concurrent disjoint inserts" `Slow test_sl_concurrent_inserts;
        tc "concurrent duplicate race" `Slow test_sl_concurrent_duplicates;
        tc "concurrent pop_min" `Slow test_sl_concurrent_pop_min;
      ] );
    ( "cds.cset",
      [
        tc "basics" `Quick test_cset_basics;
        tc "add_batch dedup" `Quick test_cset_add_batch;
        tc "range iteration" `Quick test_cset_range;
      ] );
    ( "cds.chashmap",
      [
        tc "basics" `Quick test_chm_basics;
        tc "find_or_add" `Quick test_chm_find_or_add;
        tc "update" `Quick test_chm_update;
        tc "re-entrant iter" `Quick test_chm_iter_reentrant;
        tc "concurrent add_if_absent" `Slow test_chm_concurrent;
        QCheck_alcotest.to_alcotest prop_chm_model;
      ] );
    ( "cds.stack",
      [
        tc "LIFO" `Quick test_stack_lifo;
        tc "pop_all" `Quick test_stack_pop_all;
        tc "concurrent pushes" `Slow test_stack_concurrent;
      ] );
    ( "cds.queue",
      [
        tc "FIFO" `Quick test_queue_fifo;
        tc "drain" `Quick test_queue_drain;
        tc "2 producers x 2 consumers" `Slow test_queue_mpmc;
      ] );
  ]
