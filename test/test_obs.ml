(* Observability layer: span rings, the tracer's recording discipline,
   Chrome-trace export, the metrics registry, and the guarantee that a
   disabled tracer adds nothing to instrumented hot paths. *)

open Jstar_core
open Jstar_obs

let v_int i = Value.Int i

(* A deterministic chain program: T(x) puts T(x+1) until x = last.
   With threads = 1 every class is a single tuple, so event counts are
   exact functions of the chain length. *)
let chain_program ~last =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Int"; Seq "x" ]
      ()
  in
  Program.rule p "next" ~trigger:t (fun ctx tuple ->
      let x = Tuple.int tuple "x" in
      if x < last then ctx.Rule.put (Tuple.make t [| v_int (x + 1) |]));
  (* A second rule on the same trigger so multi-rule tuples are
     exercised (still one rule-fire span per tuple). *)
  Program.rule p "count" ~trigger:t (fun _ _ -> ());
  (p, t)

let run_chain ~last config =
  let p, t = chain_program ~last in
  Engine.run_program ~init:[ Tuple.make t [| v_int 0 |] ] p config

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_wrap () =
  let r = Ring.create ~capacity:16 ~tid:3 in
  for i = 0 to 39 do
    Ring.record r ~kind:1 ~ts:i ~dur:(-1) ~arg:i
  done;
  Alcotest.(check int) "length capped" 16 (Ring.length r);
  Alcotest.(check int) "dropped" 24 (Ring.dropped r);
  let seen = ref [] in
  Ring.iter r (fun ~kind:_ ~ts ~dur:_ ~arg:_ -> seen := ts :: !seen);
  Alcotest.(check (list int)) "oldest retained first"
    (List.init 16 (fun i -> 24 + i))
    (List.rev !seen)

let test_ring_capacity_rounding () =
  let r = Ring.create ~capacity:33 ~tid:0 in
  Alcotest.(check int) "rounded to pow2" 64 (Ring.capacity r);
  Alcotest.(check int) "tid kept" 0 (Ring.tid r)

let test_tracer_ring_wrap_drops () =
  (* A tiny tracer ring on a real run must report drops, not lie about
     coverage. *)
  let tracer = Tracer.create ~capacity:8 ~level:Level.Spans () in
  for i = 0 to 99 do
    Tracer.instant tracer ~arg:i Kind.steal
  done;
  Alcotest.(check int) "drops counted" 92 (Tracer.dropped tracer)

(* ------------------------------------------------------------------ *)
(* Exact event counts on the fixed chain, threads = 1 *)

let test_exact_event_counts () =
  let config =
    {
      Config.default with
      Config.put_batching = true;
      tracing = Level.Spans;
    }
  in
  let result = run_chain ~last:5 config in
  Alcotest.(check int) "six steps" 6 result.Engine.steps;
  let counts = Array.make Kind.builtin_count 0 in
  Tracer.events result.Engine.tracer
    (fun ~tid:_ ~kind ~ts:_ ~dur:_ ~arg:_ ->
      if kind < Kind.builtin_count then counts.(kind) <- counts.(kind) + 1);
  let count k = counts.(Kind.to_int k) in
  Alcotest.(check int) "one step span per class" 6 (count Kind.step);
  Alcotest.(check int) "extract spans = steps + final empty" 7
    (count Kind.extract);
  Alcotest.(check int) "gamma-insert span per step" 6 (count Kind.gamma_insert);
  Alcotest.(check int) "rule-fire span per fired tuple" 6 (count Kind.rule_fire);
  Alcotest.(check int) "barrier flush per step + initial" 7
    (count Kind.barrier_flush);
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped result.Engine.tracer)

(* ------------------------------------------------------------------ *)
(* The per-kind suppress mask: rule-fire spans can be dropped while
   step/extract spans stay on — the knob for rule-fire-heavy runs. *)

let test_suppress_mask_engine () =
  let config =
    {
      Config.default with
      Config.put_batching = true;
      tracing = Level.Spans;
      trace_suppress = [ "rule-fire" ];
    }
  in
  let result = run_chain ~last:5 config in
  let counts = Array.make Kind.builtin_count 0 in
  Tracer.events result.Engine.tracer
    (fun ~tid:_ ~kind ~ts:_ ~dur:_ ~arg:_ ->
      if kind < Kind.builtin_count then counts.(kind) <- counts.(kind) + 1);
  let count k = counts.(Kind.to_int k) in
  Alcotest.(check int) "rule-fire suppressed" 0 (count Kind.rule_fire);
  Alcotest.(check int) "step spans kept" 6 (count Kind.step);
  Alcotest.(check int) "extract spans kept" 7 (count Kind.extract)

let test_suppress_mask_unit () =
  let t = Tracer.create ~suppress:[ Kind.rule_fire ] ~level:Level.Spans () in
  Alcotest.(check bool) "suppressed" true (Tracer.suppressed t Kind.rule_fire);
  Alcotest.(check bool) "enabled excludes it" false
    (Tracer.enabled t Kind.rule_fire);
  Alcotest.(check bool) "others stay enabled" true (Tracer.enabled t Kind.step);
  Tracer.set_suppressed t [ Kind.step ];
  Alcotest.(check bool) "mask replaced" true (Tracer.enabled t Kind.rule_fire);
  Alcotest.(check bool) "step now masked" false (Tracer.enabled t Kind.step);
  (* Registered (custom) kinds share the id space and mask like any
     builtin while they fit in the mask word. *)
  let custom = Tracer.register_kind t "bench-phase" in
  Alcotest.(check bool) "custom kind on by default" true
    (Tracer.enabled t custom);
  Tracer.set_suppressed t [ custom ];
  Alcotest.(check bool) "custom kind maskable" false (Tracer.enabled t custom);
  (* Suppression only mutes recording, it never makes spans_on lie. *)
  Alcotest.(check bool) "spans still on" true (Tracer.spans_on t)

(* ------------------------------------------------------------------ *)
(* Export: valid JSON, well-formed nesting, round-trip *)

let trace_json config =
  let result = run_chain ~last:8 config in
  let buf = Buffer.create 4096 in
  Export.chrome_trace buf result.Engine.tracer;
  (result, Buffer.contents buf)

let spans_config threads =
  { (Config.parallel ~threads ()) with Config.tracing = Level.Spans }

let test_export_validates () =
  let _, json = trace_json (spans_config 1) in
  match Trace_check.validate_string json with
  | Error e -> Alcotest.failf "invalid trace: %s" e
  | Ok s ->
      Alcotest.(check bool) "has events" true (s.Trace_check.events > 0);
      Alcotest.(check bool) "spans balanced (validator counts pairs)" true
        (s.Trace_check.spans > 0);
      Alcotest.(check int) "step spans present (B+E per span)" 18
        (Trace_check.name_count s "step")

let test_export_validates_parallel () =
  (* Multi-domain run: every domain's ring becomes its own track and
     each track must still nest. *)
  let _, json = trace_json (spans_config 3) in
  match Trace_check.validate_string json with
  | Error e -> Alcotest.failf "invalid parallel trace: %s" e
  | Ok s -> Alcotest.(check bool) "has tracks" true (s.Trace_check.tracks >= 1)

let test_export_round_trips () =
  let _, json = trace_json (spans_config 1) in
  match Json.of_string json with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok ast -> (
      match Json.of_string (Json.to_string ast) with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok ast' ->
          Alcotest.(check bool) "print/parse round-trip" true (ast = ast'))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_snapshot () =
  let config =
    { Config.default with Config.tracing = Level.Counters }
  in
  let result = run_chain ~last:5 config in
  let rows = Metrics.snapshot result.Engine.metrics in
  let find name =
    match List.find_opt (fun r -> r.Metrics.name = name) rows with
    | Some r -> r
    | None -> Alcotest.failf "missing metric %s" name
  in
  let int_field row f =
    match List.assoc_opt f row.Metrics.fields with
    | Some (Metrics.Int i) -> i
    | Some (Metrics.Float x) -> int_of_float x
    | None -> Alcotest.failf "missing field %s on %s" f row.Metrics.name
  in
  Alcotest.(check int) "gamma size gauge" 6
    (int_field (find "gamma.T.size") "value");
  Alcotest.(check int) "delta drained" 0
    (int_field (find "delta.size") "value");
  Alcotest.(check int) "puts counter" 6
    (int_field (find "table.T.puts") "value");
  let widths = find "engine.class_width" in
  Alcotest.(check string) "histogram row" "histogram" widths.Metrics.kind;
  Alcotest.(check int) "one width observation per step" 6
    (int_field widths "count");
  (* every class in the chain is a single tuple *)
  Alcotest.(check bool) "width max in first pow2 bucket" true
    (int_field widths "max" <= 1);
  let csv = Buffer.create 256 in
  Metrics.to_csv csv rows;
  Alcotest.(check bool) "csv has header and rows" true
    (String.length (Buffer.contents csv) > 64)

let test_histogram_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~name:"h" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.hist_count h);
  Alcotest.(check (float 1.0)) "sum" 500500.0 (Metrics.hist_sum h);
  Alcotest.(check (float 1.0)) "mean" 500.5 (Metrics.hist_mean h);
  Alcotest.(check (float 0.001)) "max" 1000.0 (Metrics.hist_max h);
  let p50 = Metrics.hist_quantile h 0.5 in
  (* bucketed quantile: exact to within one power of two *)
  Alcotest.(check bool) "p50 bracket" true (p50 >= 500.0 && p50 <= 1024.0)

(* ------------------------------------------------------------------ *)
(* Tracing = Off costs nothing on the recording path *)

let test_disabled_tracer_zero_alloc () =
  let t = Tracer.disabled in
  let minor_delta f =
    (* settle, then measure: [Gc.minor_words] itself boxes a float, so
       compare against an identically-shaped empty loop *)
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  let baseline =
    minor_delta (fun () ->
        for i = 1 to 10_000 do
          ignore (Sys.opaque_identity i)
        done)
  in
  (* No [~arg] here: passing an optional argument boxes a [Some] at the
     call site regardless of the tracer's level, which is why every
     instrumented site that passes [~arg] sits behind a spans_on /
     counters_on guard.  The unguarded shape is exactly this one. *)
  let traced =
    minor_delta (fun () ->
        for i = 1 to 10_000 do
          ignore (Sys.opaque_identity i);
          Tracer.instant t Kind.steal;
          let t0 = Tracer.start t in
          Tracer.stop t Kind.idle t0;
          Tracer.record_span t Kind.step ~ts:0 ~dur:0
        done)
  in
  Alcotest.(check (float 0.0)) "no allocation from disabled hooks" baseline
    traced

let test_off_engine_result_is_disabled () =
  let result = run_chain ~last:3 Config.default in
  Alcotest.(check bool) "tracer disabled" false
    (Tracer.counters_on result.Engine.tracer);
  Alcotest.(check int) "no rings" 0
    (List.length (Tracer.rings result.Engine.tracer))

(* ------------------------------------------------------------------ *)
(* Determinism under tracing: outputs must not depend on the level *)

let test_tracing_preserves_outputs () =
  let outputs config = (run_chain ~last:6 config).Engine.outputs in
  let base = outputs Config.default in
  List.iter
    (fun level ->
      let traced =
        outputs { Config.default with Config.tracing = level }
      in
      Alcotest.(check (list string))
        ("outputs at " ^ Level.to_string level)
        base traced)
    [ Level.Counters; Level.Spans ]

let suite =
  let tc = Alcotest.test_case in
  [
    ( "obs.ring",
      [
        tc "wrap keeps newest, counts dropped" `Quick test_ring_wrap;
        tc "capacity rounds to pow2" `Quick test_ring_capacity_rounding;
        tc "tracer reports ring drops" `Quick test_tracer_ring_wrap_drops;
      ] );
    ( "obs.tracer",
      [
        tc "exact event counts, threads=1" `Quick test_exact_event_counts;
        tc "suppress mask drops rule-fire only" `Quick
          test_suppress_mask_engine;
        tc "suppress mask unit contract" `Quick test_suppress_mask_unit;
        tc "disabled tracer allocates nothing" `Quick
          test_disabled_tracer_zero_alloc;
        tc "Off run carries disabled tracer" `Quick
          test_off_engine_result_is_disabled;
        tc "tracing level preserves outputs" `Quick
          test_tracing_preserves_outputs;
      ] );
    ( "obs.export",
      [
        tc "chrome trace validates" `Quick test_export_validates;
        tc "parallel trace validates" `Quick test_export_validates_parallel;
        tc "JSON round-trips" `Quick test_export_round_trips;
      ] );
    ( "obs.metrics",
      [
        tc "registry snapshot over a run" `Quick test_metrics_snapshot;
        tc "histogram statistics" `Quick test_histogram_quantiles;
      ] );
  ]
