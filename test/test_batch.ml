(* Batched relational-algebra rule firing (PR 6): the vectorized
   Phase A/B path ([Config.batch_fire]) must be observationally
   identical to per-tuple firing — digests, output stream, per-table
   stats, and lineage — across the full threads x batch_fire x
   put_batching grid, with provenance and the causality auditor on.
   Also covers the PR-4 lineage gap this PR closes: a put issued
   *after* a positive scan completed records the scanned tuples as
   parents, not just the trigger. *)

open Jstar_core

let v_int i = Value.Int i

(* ------------------------------------------------------------------ *)
(* Fixture: transitive closure with a declared hash-join key, so the
   batch path exercises chunk sorting and the probe cursor against a
   hash-indexed Edge table. *)

type closure = {
  c_program : Program.t;
  c_edge : Schema.t;
  c_path : Schema.t;
  c_init : Tuple.t list;
}

let closure_program edges =
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let path =
    Program.table p "Path"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Path" ]
      ()
  in
  Program.order p [ "Edge"; "Path" ];
  Program.rule p "seed" ~trigger:edge (fun ctx e ->
      ctx.Rule.put (Tuple.make path [| Tuple.get e 0; Tuple.get e 1 |]));
  Program.rule p "close" ~trigger:path
    ~reads:[ Spec.read ~prefix:[ Spec.Field "b" ] "Edge" ]
    (fun ctx t ->
      let x = Tuple.get t 0 and y = Tuple.int t "b" in
      Query.iter ctx edge ~prefix:[| v_int y |] (fun e ->
          ctx.Rule.put (Tuple.make path [| x; Tuple.get e 1 |])));
  Program.output p path (fun t ->
      Printf.sprintf "path %d %d" (Tuple.int t "a") (Tuple.int t "b"));
  let init =
    List.map (fun (a, b) -> Tuple.make edge [| v_int a; v_int b |]) edges
  in
  { c_program = p; c_edge = edge; c_path = path; c_init = init }

(* The equivalence grid: the (1, false, false) oracle plus every
   combination the batch path can take. *)
let grid =
  [
    (1, false, false);
    (1, true, false);
    (2, false, false);
    (2, false, true);
    (2, true, false);
    (2, true, true);
    (4, true, true);
  ]

let grid_config ~threads ~batch_fire ~put_batching =
  let c =
    if threads = 1 then Config.default else Config.parallel ~threads ()
  in
  {
    c with
    Config.batch_fire;
    put_batching;
    indexes = [ ("Edge", [ 1 ]) ];
    provenance = true;
    audit_causality = true;
    digest = true;
  }

type observation = {
  o_digest : (string * string * string * (string * string) list) option;
  o_outputs : string list;
  o_stats : Table_stats.snapshot list;
  o_delta : int * int;
}

let observe result =
  {
    o_digest =
      Option.map
        (fun d ->
          ( d.Engine.d_gamma,
            d.Engine.d_classes,
            d.Engine.d_outputs,
            d.Engine.d_tables ))
        result.Engine.digest;
    o_outputs = result.Engine.outputs;
    o_stats = Table_stats.snapshot result.Engine.stats;
    o_delta = (result.Engine.delta_inserted, result.Engine.delta_deduped);
  }

let check_grid_equal ~msg observations =
  match observations with
  | [] -> ()
  | reference :: rest ->
      List.iteri
        (fun i o ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: digests at grid point %d" msg (i + 1))
            true
            (o.o_digest = reference.o_digest);
          Alcotest.(check bool)
            (Printf.sprintf "%s: outputs at grid point %d" msg (i + 1))
            true
            (o.o_outputs = reference.o_outputs);
          Alcotest.(check bool)
            (Printf.sprintf "%s: stats at grid point %d" msg (i + 1))
            true
            (o.o_stats = reference.o_stats);
          Alcotest.(check bool)
            (Printf.sprintf "%s: delta totals at grid point %d" msg (i + 1))
            true
            (o.o_delta = reference.o_delta))
        rest

(* ------------------------------------------------------------------ *)
(* Closure: batched == per-tuple on the whole grid *)

let run_closure_point edges (threads, batch_fire, put_batching) =
  let c = closure_program edges in
  let config = grid_config ~threads ~batch_fire ~put_batching in
  observe (Engine.run_program ~init:c.c_init c.c_program config)

let test_closure_grid () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 4); (4, 2); (2, 5) ] in
  check_grid_equal ~msg:"closure"
    (List.map (run_closure_point edges) grid);
  (* sanity: the digest is not vacuously equal *)
  let o = run_closure_point edges (2, true, true) in
  Alcotest.(check bool) "digest present" true (o.o_digest <> None);
  Alcotest.(check bool) "outputs present" true (o.o_outputs <> [])

let prop_closure_grid =
  QCheck.Test.make ~name:"batched == per-tuple on random graphs" ~count:8
    QCheck.(
      list_of_size (Gen.int_range 1 25) (pair (int_range 0 7) (int_range 0 7)))
    (fun edges ->
      let oracle = run_closure_point edges (1, false, false) in
      List.for_all
        (fun point -> run_closure_point edges point = oracle)
        [ (2, true, false); (2, true, true); (4, true, true) ])

(* ------------------------------------------------------------------ *)
(* PvWatts-small: the numeric pipeline (custom stores, -noDelta chain,
   aggregate queries) through the same grid.  Custom stores are not
   probe-stable, so this exercises the cursor's fallback path. *)

let pvwatts_data =
  lazy
    (Jstar_csv.Pvwatts_data.to_bytes ~installations:1
       ~ordering:Jstar_csv.Pvwatts_data.Month_major)

let test_pvwatts_grid () =
  let data = Lazy.force pvwatts_data in
  let observations =
    List.map
      (fun (threads, batch_fire, put_batching) ->
        let cfg =
          {
            (Jstar_apps.Pvwatts.config ~threads ()) with
            Config.batch_fire;
            put_batching;
            digest = true;
          }
        in
        observe (Jstar_apps.Pvwatts.run ~chunks:4 ~data cfg))
      grid
  in
  check_grid_equal ~msg:"pvwatts" observations

(* ------------------------------------------------------------------ *)
(* The PR-4 lineage gap: a rule that collects scan matches and puts
   after the scan completed.  PR 4 recorded only the trigger as the
   put's parent; the completed scan's bindings must now appear too,
   and identically on every grid point. *)

let deferred_program edges =
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let path =
    Program.table p "Path"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Path" ]
      ()
  in
  Program.order p [ "Edge"; "Path" ];
  Program.rule p "seed" ~trigger:edge (fun ctx e ->
      ctx.Rule.put (Tuple.make path [| Tuple.get e 0; Tuple.get e 1 |]));
  Program.rule p "close_deferred" ~trigger:path
    ~reads:[ Spec.read ~prefix:[ Spec.Field "b" ] "Edge" ]
    (fun ctx t ->
      let x = Tuple.get t 0 and y = Tuple.int t "b" in
      (* bind the scan's matches into a local, put after it returns *)
      let matches = ref [] in
      Query.iter ctx edge ~prefix:[| v_int y |] (fun e ->
          matches := e :: !matches);
      List.iter
        (fun e -> ctx.Rule.put (Tuple.make path [| x; Tuple.get e 1 |]))
        !matches);
  let init =
    List.map (fun (a, b) -> Tuple.make edge [| v_int a; v_int b |]) edges
  in
  (p, edge, path, init)

let test_deferred_put_full_frame () =
  let edges = [ (0, 1); (1, 2); (1, 3) ] in
  let trees =
    List.map
      (fun (threads, batch_fire, put_batching) ->
        let p, edge, path, init = deferred_program edges in
        let config = grid_config ~threads ~batch_fire ~put_batching in
        let frozen = Program.freeze p in
        let result, gamma = Engine.run_with_gamma ~init frozen config in
        let lineage = Option.get result.Engine.lineage in
        (match Jstar_prov.Explain.completeness_error ~lineage with
        | None -> ()
        | Some msg -> Alcotest.fail ("lineage incomplete: " ^ msg));
        (* Path(0,2) is derived by close_deferred from trigger
           Path(0,1) and scanned Edge(1,2): the Edge tuple must be a
           direct child of its derivation node. *)
        let target = Tuple.make path [| v_int 0; v_int 2 |] in
        (match Jstar_prov.Explain.derive ~lineage ~frozen target with
        | None -> Alcotest.fail "Path(0,2) untracked"
        | Some node ->
            let child_schemas =
              List.map
                (fun ch ->
                  (Tuple.schema ch.Jstar_prov.Explain.n_tuple).Schema.name)
                node.Jstar_prov.Explain.n_children
            in
            Alcotest.(check bool)
              "deferred put records the scanned Edge as a parent" true
              (List.mem edge.Schema.name child_schemas));
        (* whole-database canonical trees, for cross-grid comparison *)
        let tuples = ref [] in
        (gamma path).Store.iter (fun t -> tuples := t :: !tuples);
        List.map
          (fun t ->
            match Jstar_prov.Explain.derive ~lineage ~frozen t with
            | Some node -> Jstar_prov.Explain.to_string node
            | None -> Alcotest.fail ("stored but untracked: " ^ Tuple.show t))
          (List.sort Tuple.compare !tuples))
      grid
  in
  match trees with
  | reference :: rest ->
      List.iteri
        (fun i t ->
          Alcotest.(check bool)
            (Printf.sprintf "deferred-put trees identical at grid point %d"
               (i + 1))
            true (t = reference))
        rest
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Sessions: feed/drain with batching on matches the oracle *)

let test_session_grid () =
  let observations =
    List.map
      (fun (threads, batch_fire, put_batching) ->
        let c = closure_program [] in
        let config = grid_config ~threads ~batch_fire ~put_batching in
        let frozen = Program.freeze c.c_program in
        let s = Engine.start frozen config in
        let feed_edges es =
          Engine.feed s
            (List.map
               (fun (a, b) -> Tuple.make c.c_edge [| v_int a; v_int b |])
               es)
        in
        feed_edges [ (2, 3); (3, 4) ];
        ignore (Engine.drain s);
        feed_edges [ (0, 1); (1, 2) ];
        ignore (Engine.drain s);
        observe (Engine.finish s))
      grid
  in
  check_grid_equal ~msg:"session" observations

(* ------------------------------------------------------------------ *)
(* Probe contract: hash, indexed and (since the sharding PR) ordered
   stores answer probe_prefix with exactly the tuples iter_prefix
   visits; only stores with no access path at all decline. *)

let test_probe_prefix_contract () =
  let schema =
    Schema.make ~id:0 ~name:"P"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~key_arity:2
      ~orderby:Schema.[ Lit "P" ]
  in
  let mk a b = Tuple.make schema [| v_int a; v_int b |] in
  let tuples = [ mk 0 1; mk 0 2; mk 1 1; mk 2 7; mk 0 3 ] in
  let fill store = List.iter (fun t -> ignore (store.Store.insert t)) tuples in
  let sorted l = List.sort Tuple.compare l in
  let check_store name store =
    fill store;
    List.iter
      (fun prefix ->
        let scanned = ref [] in
        store.Store.iter_prefix prefix (fun t -> scanned := t :: !scanned);
        match store.Store.probe_prefix prefix with
        | None ->
            Alcotest.failf "%s: probe declined a supported prefix" name
        | Some items ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: probe = scan for prefix len %d" name
                 (Array.length prefix))
              true
              (List.equal Tuple.equal (sorted items) (sorted !scanned)))
      [ [| v_int 0 |]; [| v_int 1 |]; [| v_int 9 |] ]
  in
  check_store "hash" (Store.of_spec (Store.Hash_index 1) schema);
  let indexed, _h =
    Store.indexed ~prefix_lens:[ 1 ] schema
      (Store.of_spec Store.Tree schema)
  in
  check_store "indexed" indexed;
  (* ordered stores now materialise the range scan in visit order —
     the vectorized negative/aggregate path; probe must equal scan,
     including visit order *)
  List.iter
    (fun (name, store) ->
      fill store;
      List.iter
        (fun prefix ->
          let scanned = ref [] in
          store.Store.iter_prefix prefix (fun t -> scanned := t :: !scanned);
          match store.Store.probe_prefix prefix with
          | None -> Alcotest.failf "%s: probe declined a range scan" name
          | Some items ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: probe = scan in visit order" name)
                true
                (List.equal Tuple.equal items (List.rev !scanned)))
        [ [| v_int 0 |]; [| v_int 1 |]; [| v_int 9 |]; [||] ])
    [
      ("tree", Store.of_spec Store.Tree schema);
      ("skiplist", Store.of_spec Store.Skiplist schema);
    ];
  (* under-specified hash prefixes materialise the full scan too *)
  let hash2 = Store.of_spec (Store.Hash_index 2) schema in
  fill hash2;
  (match hash2.Store.probe_prefix [| v_int 0 |] with
  | None -> Alcotest.fail "hash: under-specified prefix declined"
  | Some items ->
      let scanned = ref [] in
      hash2.Store.iter_prefix [| v_int 0 |] (fun t -> scanned := t :: !scanned);
      Alcotest.(check bool) "hash under-specified: probe = scan" true
        (List.equal Tuple.equal (sorted items) (sorted !scanned)));
  (* stores with no access path at all still decline *)
  let windowed =
    Store.windowed ~field:"a" ~width:2 (Store.of_spec Store.Tree) schema
  in
  Alcotest.(check bool) "windowed store declines probe" true
    (windowed.Store.probe_prefix [| v_int 0 |] = None)

let suite =
  [
    ( "batch",
      [
        Alcotest.test_case "closure grid: batched == per-tuple" `Quick
          test_closure_grid;
        QCheck_alcotest.to_alcotest prop_closure_grid;
        Alcotest.test_case "pvwatts grid: batched == per-tuple" `Slow
          test_pvwatts_grid;
        Alcotest.test_case "deferred put records full bound frame" `Quick
          test_deferred_put_full_frame;
        Alcotest.test_case "session feed/drain grid" `Quick test_session_grid;
        Alcotest.test_case "probe_prefix contract" `Quick
          test_probe_prefix_contract;
      ] );
  ]
