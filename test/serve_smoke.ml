(* End-to-end smoke for the jstar-serve *binary* (the @serve-smoke
   alias): spawns the real server executable as a child process and
   drives it over real sockets, covering the process-level behaviours
   the in-process tests cannot — stdout port advertisement, SIGTERM
   drain-then-checkpoint, and kill -9 crash recovery to the last
   durable watermark.  Exit 0 = healthy; any failure raises.

   Phases:
     A. concurrent clients: 3 sessions fed in parallel threads, every
        digest must equal a standalone in-process oracle
     B. branch -> feed -> merge reproduces the oracle digest
     C. SIGTERM: server prints "drained and stopped", exits 0, and a
        restarted server restores the sessions byte-identically
     D. kill -9 mid-stream: a restart recovers the drained watermark
        exactly, and draining the replayed tail lands on the oracle *)

open Jstar_core
module Serve = Jstar_serve

let fail fmt = Printf.ksprintf failwith fmt
let note fmt = Printf.ksprintf (fun s -> print_endline ("serve-smoke: " ^ s)) fmt

let bin =
  if Array.length Sys.argv < 2 then fail "usage: serve_smoke JSTAR_SERVE_BIN"
  else Sys.argv.(1)

let root = Filename.concat (Filename.get_temp_dir_name ()) "jstar-serve-smoke"

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

(* -- child-process server ---------------------------------------------- *)

type server = { pid : int; out : in_channel; port : int }

(* The most recently spawned (possibly live) server, so a failing phase
   never leaks an orphan process past the smoke. *)
let current = ref None

let start_server () =
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process bin
      [|
        bin; "serve"; "--root"; root; "--port"; "0"; "--fsync"; "always";
        "--idle-timeout"; "0";
      |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let out = Unix.in_channel_of_descr out_r in
  let line = try input_line out with End_of_file -> fail "server died at boot" in
  let port =
    try Scanf.sscanf line "jstar-serve: listening on %s@:%d" (fun _ p -> p)
    with Scanf.Scan_failure _ | Failure _ ->
      fail "unexpected boot line: %s" line
  in
  let s = { pid; out; port } in
  current := Some s;
  s

(* Drain the server's remaining stdout to EOF and reap it. *)
let finish_server s =
  let rest = ref [] in
  (try
     while true do
       rest := input_line s.out :: !rest
     done
   with End_of_file -> ());
  close_in_noerr s.out;
  let _, status = Unix.waitpid [] s.pid in
  (status, List.rev !rest)

(* -- oracle ------------------------------------------------------------ *)

let frozen = Serve.Demo.sensor_program ()
let sensors = 8
let drain_every = 5

type fingerprint = { gamma : string; outputs : int; out_lanes : int * int }

let fp_str f =
  Printf.sprintf "{gamma=%s outputs=%d lanes=%x:%x}" f.gamma f.outputs
    (fst f.out_lanes) (snd f.out_lanes)

let fp_of (d : Serve.Protocol.digest_info) =
  {
    gamma = d.Serve.Protocol.d_gamma;
    outputs = d.d_outputs;
    out_lanes = d.d_out_lanes;
  }

let check what want got =
  if want <> got then fail "%s: want %s, got %s" what (fp_str want) (fp_str got)

(* Standalone single-session oracle: [drained] ticks with a drain every
   [drain_every], then [tail] undrained ticks, then one final drain —
   the exact rhythm the serve phases use. *)
let oracle ~drained ~tail =
  let dir = Filename.concat root "oracle" in
  rm_rf dir;
  let d, _ =
    Jstar_persist.Durable.open_ ~fsync:Jstar_persist.Wal.Never ~dir frozen
      Config.default
  in
  for t = 0 to drained - 1 do
    Jstar_persist.Durable.feed d (Serve.Demo.batch frozen ~sensors ~t);
    if (t + 1) mod drain_every = 0 then ignore (Jstar_persist.Durable.drain d)
  done;
  for t = drained to drained + tail - 1 do
    Jstar_persist.Durable.feed d (Serve.Demo.batch frozen ~sensors ~t)
  done;
  ignore (Jstar_persist.Durable.drain d);
  let session = Jstar_persist.Durable.session d in
  let st = Engine.session_state ~with_outputs:false session in
  let fp =
    {
      gamma = Engine.gamma_digest session;
      outputs = st.Engine.ss_outputs_count;
      out_lanes = Jstar_persist.Durable.output_lanes d;
    }
  in
  ignore (Jstar_persist.Durable.finish d);
  rm_rf dir;
  fp

let feed_range c ~from ~ticks =
  for t = from to from + ticks - 1 do
    ignore (Serve.Client.feed c (Serve.Demo.batch frozen ~sensors ~t));
    if (t - from + 1) mod drain_every = 0 then ignore (Serve.Client.drain c)
  done;
  ignore (Serve.Client.drain c)

let session_fp ~port name =
  let c = Serve.Client.connect ~port frozen in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      ignore (Serve.Client.open_session c name);
      fp_of (Serve.Client.digest c))

(* -- phases ------------------------------------------------------------ *)

let ticks = 30

let phase_concurrent_clients port want =
  let results = Array.make 3 None in
  let threads =
    List.init 3 (fun i ->
        Thread.create
          (fun () ->
            let c = Serve.Client.connect ~port frozen in
            ignore (Serve.Client.open_session c (Printf.sprintf "smoke/s%d" i));
            feed_range c ~from:0 ~ticks;
            results.(i) <- Some (fp_of (Serve.Client.digest c));
            Serve.Client.close c)
          ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | None -> fail "client %d never finished" i
      | Some got -> check (Printf.sprintf "smoke/s%d = oracle" i) want got)
    results;
  note "A: 3 concurrent clients, all digests = oracle"

let phase_branch_merge port want =
  let c = Serve.Client.connect ~port frozen in
  ignore (Serve.Client.open_session c "bm/main");
  feed_range c ~from:0 ~ticks:(ticks / 2);
  ignore (Serve.Client.branch c "bm/side");
  let c2 = Serve.Client.connect ~port frozen in
  ignore (Serve.Client.open_session c2 "bm/side");
  feed_range c2 ~from:(ticks / 2) ~ticks:(ticks - (ticks / 2));
  Serve.Client.close c2;
  ignore (Serve.Client.merge c ~from:"bm/side");
  check "branch+merge = oracle" want (fp_of (Serve.Client.digest c));
  Serve.Client.close c;
  note "B: branch -> feed -> merge lands on the oracle digest"

let phase_sigterm_drain s want =
  Unix.kill s.pid Sys.sigterm;
  let status, lines = finish_server s in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "SIGTERM: server exited %d" n
  | _ -> fail "SIGTERM: server killed, not drained");
  if not (List.exists (fun l -> l = "jstar-serve: drained and stopped") lines)
  then fail "SIGTERM: no 'drained and stopped' line in %s"
    (String.concat " | " lines);
  let s2 = start_server () in
  check "smoke/s0 after restart" want (session_fp ~port:s2.port "smoke/s0");
  note "C: SIGTERM drained cleanly; restart restores smoke/s0 exactly";
  s2

let phase_kill9_recovery s =
  let drained = 20 and tail = 10 in
  let mid = oracle ~drained ~tail:0 in
  let full = oracle ~drained ~tail in
  let c = Serve.Client.connect ~port:s.port frozen in
  ignore (Serve.Client.open_session c "crash/x");
  feed_range c ~from:0 ~ticks:drained;
  (* a tail the worker applies (WAL-append + enqueue) but never drains *)
  for t = drained to drained + tail - 1 do
    ignore (Serve.Client.feed c (Serve.Demo.batch frozen ~sensors ~t))
  done;
  check "crash/x before kill" mid (fp_of (Serve.Client.digest c));
  Unix.kill s.pid Sys.sigkill;
  ignore (finish_server s);
  (try Serve.Client.close c with _ -> ());
  let s2 = start_server () in
  let c2 = Serve.Client.connect ~port:s2.port frozen in
  ignore (Serve.Client.open_session c2 "crash/x");
  (* replay recovers the drained watermark; the fsynced tail is pending *)
  check "crash/x recovered watermark" mid (fp_of (Serve.Client.digest c2));
  ignore (Serve.Client.drain c2);
  check "crash/x tail replayed" full (fp_of (Serve.Client.digest c2));
  Serve.Client.close c2;
  note "D: kill -9 recovered to the watermark; tail drains to the oracle";
  s2

let () =
  rm_rf root;
  Unix.mkdir root 0o755;
  Fun.protect
    ~finally:(fun () ->
      match !current with
      | Some s -> ( try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ())
      | None -> ())
    (fun () ->
      let want = oracle ~drained:ticks ~tail:0 in
      let s = start_server () in
      note "server pid %d on port %d" s.pid s.port;
      phase_concurrent_clients s.port want;
      phase_branch_merge s.port want;
      let s2 = phase_sigterm_drain s want in
      let s3 = phase_kill9_recovery s2 in
      Unix.kill s3.pid Sys.sigterm;
      let status, _ = finish_server s3 in
      (match status with
      | Unix.WEXITED 0 -> ()
      | _ -> fail "final shutdown was not clean");
      current := None);
  rm_rf root;
  note "all phases green"
