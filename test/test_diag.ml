(* Flight-recorder & causal-tracing diagnostics (PR 9): the journal
   ring's wrap/filter arithmetic, the alert hysteresis machine, stuck-
   shard health classification, cross-shard flow events in the Chrome
   trace, bundle schema on a seeded causality violation and on SIGUSR1
   mid-drain, and the zero-impact guarantee — every digest lane bit-
   identical with the whole diagnostics plane armed. *)

open Jstar_core
open Jstar_obs

let v_int i = Value.Int i

(* ------------------------------------------------------------------ *)
(* Journal: wrap/severity-filter round-trip (qcheck) *)

let severities = [| Journal.Debug; Journal.Info; Journal.Warn; Journal.Error |]

let prop_journal_ring =
  QCheck.Test.make ~name:"journal ring wrap + severity filter round-trip"
    ~count:100
    QCheck.(pair (int_bound 3) (list_of_size Gen.(int_bound 200) (int_bound 3)))
    (fun (min_rank, sevs) ->
      let min_severity = severities.(min_rank) in
      let j = Journal.create ~capacity:16 ~min_severity () in
      List.iteri
        (fun i rank ->
          Journal.log j severities.(rank) ~comp:"test" ~event:"e"
            [ ("i", Json.Num (float_of_int i)) ])
        sevs;
      let accepted =
        List.filter (fun rank -> rank >= min_rank) sevs |> List.length
      in
      let retained = min accepted (Journal.capacity j) in
      Journal.offered j = List.length sevs
      && Journal.recorded j = accepted
      && Journal.dropped j = accepted - retained
      && List.length (Journal.entries j) = retained
      && (* entries are the newest [retained] accepted ones, oldest
            first, with strictly increasing sequence numbers and no
            entry below the filter *)
      (let es = Journal.entries j in
       let seqs = List.map (fun e -> e.Journal.j_seq) es in
       seqs = List.sort compare seqs
       && List.for_all
            (fun e -> Journal.severity_rank e.Journal.j_sev >= min_rank)
            es)
      && (* the JSON-lines form parses back line-for-line *)
      (let lines =
         String.split_on_char '\n' (String.trim (Journal.to_lines j))
       in
       (if retained = 0 then lines = [ "" ] || lines = []
        else
          List.length lines = retained
          && List.for_all
               (fun l ->
                 match Json.of_string l with
                 | Ok (Json.Obj fields) ->
                     List.mem_assoc "severity" fields
                     && List.mem_assoc "component" fields
                     && List.mem_assoc "event" fields
                 | _ -> false)
               lines)))

let test_journal_tail_and_names () =
  let j = Journal.create ~capacity:8 () in
  for i = 0 to 19 do
    Journal.info j ~comp:"c" ~event:"e" [ ("i", Json.Num (float_of_int i)) ]
  done;
  let tail = Journal.tail ~n:3 j in
  Alcotest.(check int) "tail length" 3 (List.length tail);
  Alcotest.(check (list int)) "tail is the newest three, oldest first"
    [ 17; 18; 19 ]
    (List.map (fun e -> e.Journal.j_seq) tail);
  Alcotest.(check (option string))
    "severity names round-trip" (Some "warn")
    (Option.map Journal.severity_name (Journal.severity_of_name "warn"));
  Alcotest.(check bool) "unknown name rejected" true
    (Journal.severity_of_name "loud" = None)

let test_journal_min_severity_runtime () =
  let j = Journal.create () in
  Journal.set_min_severity j Journal.Warn;
  Journal.debug j ~comp:"c" ~event:"quiet" [];
  Journal.error j ~comp:"c" ~event:"loud" [];
  Alcotest.(check int) "offered counts both" 2 (Journal.offered j);
  Alcotest.(check int) "recorded only the error" 1 (Journal.recorded j);
  match Journal.entries j with
  | [ e ] -> Alcotest.(check string) "kept the error" "loud" e.Journal.j_event
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

(* ------------------------------------------------------------------ *)
(* Alerts: the ok -> pending -> firing hysteresis machine *)

(* A registry with one hand-driven gauge: each eval reads the value we
   planted, so the state machine is exercised deterministically. *)
let driven_registry () =
  let v = ref 0.0 in
  let m = Metrics.create () in
  Metrics.register_gauge m ~name:"drive" (fun () -> Metrics.Float !v);
  (m, v)

let states a = List.map (fun s -> s.Alerts.a_state) (Alerts.statuses a)

let test_alert_threshold_hysteresis () =
  let m, v = driven_registry () in
  let a =
    Alerts.create
      [
        Alerts.rule ~for_:2 ~clear:2 ~name:"hot"
          (Alerts.Threshold
             { metric = "drive"; cmp = Alerts.Gt; value = 10.0 });
      ]
  in
  let eval step = Alerts.eval a ~step m in
  eval 0;
  Alcotest.(check bool) "ok below threshold" true (states a = [ Alerts.Ok ]);
  v := 11.0;
  eval 1;
  Alcotest.(check bool) "pending after first breach" true
    (states a = [ Alerts.Pending ]);
  Alcotest.(check (list string)) "pending is not firing" [] (Alerts.firing a);
  eval 2;
  Alcotest.(check bool) "firing after for=2 consecutive" true
    (states a = [ Alerts.Firing ]);
  Alcotest.(check (list string)) "firing reported" [ "hot" ] (Alerts.firing a);
  (* one good reading must NOT clear a firing alert when clear=2 *)
  v := 0.0;
  eval 3;
  Alcotest.(check bool) "still firing after one good eval" true
    (states a = [ Alerts.Firing ]);
  (* a re-breach resets the clear count *)
  v := 12.0;
  eval 4;
  v := 0.0;
  eval 5;
  Alcotest.(check bool) "re-breach reset the clear counter" true
    (states a = [ Alerts.Firing ]);
  eval 6;
  Alcotest.(check bool) "ok after clear=2 consecutive good" true
    (states a = [ Alerts.Ok ]);
  Alcotest.(check bool) "transitions counted" true (Alerts.transitions a >= 3);
  Alcotest.(check int) "every eval counted" 7 (Alerts.evals a)

let test_alert_pending_interrupted () =
  (* A breach that does not persist for [for_] evals never fires. *)
  let m, v = driven_registry () in
  let a =
    Alerts.create
      [
        Alerts.rule ~for_:3 ~name:"flap"
          (Alerts.Threshold
             { metric = "drive"; cmp = Alerts.Gt; value = 1.0 });
      ]
  in
  v := 2.0;
  Alerts.eval a ~step:0 m;
  Alerts.eval a ~step:1 m;
  v := 0.0;
  Alerts.eval a ~step:2 m;
  Alcotest.(check bool) "flap returned to ok, never fired" true
    (states a = [ Alerts.Ok ]);
  Alcotest.(check (list string)) "nothing firing" [] (Alerts.firing a)

let test_alert_absent_and_rate () =
  let m, v = driven_registry () in
  let a =
    Alerts.create
      [
        Alerts.rule ~name:"gone" (Alerts.Absent { metric = "missing" });
        Alerts.rule ~name:"fast"
          (Alerts.Rate { metric = "drive"; cmp = Alerts.Gt; value = 5.0 });
      ]
  in
  Alerts.eval a ~step:0 m;
  let by_name n =
    List.find (fun s -> s.Alerts.a_name = n) (Alerts.statuses a)
  in
  Alcotest.(check bool) "absent fires on a missing metric" true
    ((by_name "gone").Alerts.a_state = Alerts.Firing);
  Alcotest.(check bool) "rate needs two readings" true
    ((by_name "fast").Alerts.a_state = Alerts.Ok);
  (* big per-step jumps push the EMA over the bound *)
  for step = 1 to 8 do
    v := !v +. 100.0;
    Alerts.eval a ~step m
  done;
  Alcotest.(check bool) "rate fires on sustained slope" true
    ((by_name "fast").Alerts.a_state = Alerts.Firing);
  (* prometheus exposition lists both non-ok alerts *)
  let prom = Alerts.prom_lines a in
  List.iter
    (fun needle ->
      let contained =
        let nl = String.length needle and pl = String.length prom in
        let rec scan i =
          i + nl <= pl && (String.sub prom i nl = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) ("prom line mentions " ^ needle) true contained)
    [ "alertname=\"gone\""; "alertname=\"fast\""; "alertstate=\"firing\"" ]

let test_alert_parse_spec () =
  (match Alerts.parse_spec "hot:engine.steps>100:for=3:clear=2" with
  | Ok r ->
      Alcotest.(check string) "name" "hot" r.Alerts.r_name;
      Alcotest.(check int) "for" 3 r.Alerts.r_for;
      Alcotest.(check int) "clear" 2 r.Alerts.r_clear;
      (match r.Alerts.r_cond with
      | Alerts.Threshold { metric; cmp = Alerts.Gt; value } ->
          Alcotest.(check string) "metric" "engine.steps" metric;
          Alcotest.(check (float 0.0)) "value" 100.0 value
      | _ -> Alcotest.fail "expected a threshold condition")
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Alerts.parse_spec "slow:rate(table.T.puts)<0.5" with
  | Ok { Alerts.r_cond = Alerts.Rate { cmp = Alerts.Lt; _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "expected a rate condition"
  | Error e -> Alcotest.failf "rate parse failed: %s" e);
  (match Alerts.parse_spec "gone:absent(delta.size)" with
  | Ok { Alerts.r_cond = Alerts.Absent { metric = "delta.size" }; _ } -> ()
  | _ -> Alcotest.fail "expected an absent condition");
  List.iter
    (fun bad ->
      match Alerts.parse_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad)
    [ ""; "noname"; "x:m>"; "x:m>abc"; "x:m>1:for=0"; "x:rate(m" ]

(* ------------------------------------------------------------------ *)
(* Health: stuck-shard classification *)

let test_health_shard_status () =
  let check msg want got =
    Alcotest.(check (pair string (list int))) msg want got
  in
  (* first scrape: no history, never degraded *)
  check "first scrape ok" ("ok", [])
    (Health.shard_status ~prev:None ~step:5 ~backlogs:[| 3; 0 |]);
  (* progress between scrapes: backlog is in-flight work, not stuckness *)
  check "advancing step ok" ("ok", [])
    (Health.shard_status
       ~prev:(Some (4, [| 3; 0 |]))
       ~step:5 ~backlogs:[| 3; 0 |]);
  (* same step, backlog present at both scrapes: stuck *)
  check "stuck shard degraded" ("degraded", [ 1 ])
    (Health.shard_status
       ~prev:(Some (5, [| 0; 2 |]))
       ~step:5 ~backlogs:[| 0; 1 |]);
  (* a shard that drained between scrapes is not an offender *)
  check "drained shard ok" ("ok", [])
    (Health.shard_status
       ~prev:(Some (5, [| 0; 2 |]))
       ~step:5 ~backlogs:[| 0; 0 |]);
  (* multiple offenders, ascending ids *)
  check "all stuck shards listed" ("degraded", [ 0; 2 ])
    (Health.shard_status
       ~prev:(Some (7, [| 1; 0; 4 |]))
       ~step:7 ~backlogs:[| 2; 0; 1 |])

(* ------------------------------------------------------------------ *)
(* Cross-shard flow events in the Chrome trace *)

(* A two-table ping-pong over a [v]-keyed routing column: tuples hash
   to different shards, so a sharded traced run must post cross-shard
   messages and the export must carry linked s/f flow halves plus named
   shard tracks. *)
let shard_chain_program ~last =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Int"; Seq "x" ]
      ()
  in
  Program.rule p "next" ~trigger:t (fun ctx tuple ->
      let x = Tuple.int tuple "x" in
      if x < last then ctx.Rule.put (Tuple.make t [| v_int (x + 1) |]));
  (p, t)

let test_flow_export () =
  let p, t = shard_chain_program ~last:24 in
  let config =
    {
      Config.default with
      Config.shards = 2;
      put_batching = true;
      tracing = Level.Spans;
    }
  in
  let result =
    Engine.run_program ~init:[ Tuple.make t [| v_int 0 |] ] p config
  in
  let buf = Buffer.create 8192 in
  Export.chrome_trace buf result.Engine.tracer;
  let json = Buffer.contents buf in
  let events =
    match Json.of_string json with
    | Ok (Json.Obj fields) -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Json.Arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array")
    | Ok _ | Error _ -> Alcotest.fail "trace did not parse"
  in
  let str k e =
    match Json.member k e with Some (Json.Str s) -> Some s | _ -> None
  in
  let num k e =
    match Json.member k e with Some (Json.Num n) -> Some n | _ -> None
  in
  let sends =
    List.filter (fun e -> str "ph" e = Some "s" && str "cat" e = Some "shard")
      events
  and recvs =
    List.filter (fun e -> str "ph" e = Some "f" && str "cat" e = Some "shard")
      events
  in
  Alcotest.(check bool) "flow send halves present" true (sends <> []);
  Alcotest.(check bool) "flow recv halves present" true (recvs <> []);
  (* every recv lands on a synthetic shard track and binds an id some
     send carries; send halves stay on real domain tracks so the arrow
     crosses tracks *)
  let send_ids =
    List.filter_map (fun e -> num "id" e) sends |> List.sort_uniq compare
  in
  List.iter
    (fun r ->
      (match num "tid" r with
      | Some tid when tid >= float_of_int (Export.shard_tid 0) -> ()
      | tid ->
          Alcotest.failf "recv tid %s not a shard track"
            (match tid with Some t -> string_of_float t | None -> "missing"));
      match num "id" r with
      | Some id when List.mem id send_ids -> ()
      | Some id -> Alcotest.failf "recv id %g has no matching send" id
      | None -> Alcotest.fail "recv without id")
    recvs;
  List.iter
    (fun s ->
      match num "tid" s with
      | Some tid when tid < float_of_int (Export.shard_tid 0) -> ()
      | _ -> Alcotest.fail "send half strayed onto a shard track")
    sends;
  (* shard tracks are named *)
  let track_names =
    List.filter_map
      (fun e ->
        if str "name" e = Some "thread_name" then
          match Json.member "args" e with
          | Some (Json.Obj a) -> (
              match List.assoc_opt "name" a with
              | Some (Json.Str n) -> Some n
              | _ -> None)
          | _ -> None
        else None)
      events
  in
  List.iter
    (fun shard_name ->
      Alcotest.(check bool)
        (shard_name ^ " track named")
        true
        (List.mem shard_name track_names))
    [ "shard-0"; "shard-1" ];
  (* drain spans ride the shard tracks and still validate as a trace *)
  (match Trace_check.validate_string json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sharded trace invalid: %s" e);
  (* flows bypass sampling: a 1-in-64 sampled run still pairs its flows *)
  let sampled =
    Engine.run_program
      ~init:[ Tuple.make t [| v_int 0 |] ]
      p
      { config with Config.trace_sample = 64 }
  in
  let buf = Buffer.create 4096 in
  Export.chrome_trace buf sampled.Engine.tracer;
  match Json.of_string (Buffer.contents buf) with
  | Ok (Json.Obj fields) ->
      let evs =
        match List.assoc_opt "traceEvents" fields with
        | Some (Json.Arr evs) -> evs
        | _ -> []
      in
      let count ph =
        List.length
          (List.filter
             (fun e -> str "ph" e = Some ph && str "cat" e = Some "shard")
             evs)
      in
      Alcotest.(check bool) "sampled run keeps flow pairs" true
        (count "s" > 0 && count "f" > 0)
  | _ -> Alcotest.fail "sampled trace did not parse"

(* ------------------------------------------------------------------ *)
(* Bundle schema checks *)

let tmp_counter = ref 0

(* CI points JSTAR_FLIGHT_DIR into the workspace so bundles written by
   a failing run survive as an uploadable artifact; locally the bundles
   go to tmp and are removed. *)
let fresh_dir prefix =
  incr tmp_counter;
  let parent =
    match Sys.getenv_opt "JSTAR_FLIGHT_DIR" with
    | Some d -> d
    | None -> Filename.get_temp_dir_name ()
  in
  Filename.concat parent
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let cleanup dir =
  if Sys.getenv_opt "JSTAR_FLIGHT_DIR" = None then rm_rf dir

let read_bundle path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.of_string (String.trim s) with
  | Ok j -> j
  | Error e -> Alcotest.failf "bundle %s: bad JSON: %s" path e

let bundle_member what k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing %S section" what k

(* The common schema assertions: parseable, versioned, carrying the
   journal/metrics/session/shards/profiler/violation sections the ops
   recorder registers. *)
let check_bundle_schema ~reason path =
  let b = read_bundle path in
  (match bundle_member "bundle" "schema" b with
  | Json.Str s ->
      Alcotest.(check string) "schema version" Recorder.schema_version s
  | _ -> Alcotest.fail "schema not a string");
  (match bundle_member "bundle" "reason" b with
  | Json.Str r -> Alcotest.(check string) "reason" reason r
  | _ -> Alcotest.fail "reason not a string");
  List.iter
    (fun k -> ignore (bundle_member "bundle" k b))
    [ "pid"; "journal"; "metrics"; "session"; "shards"; "profiler";
      "violation" ];
  (* the journal section is itself a list of well-formed entries *)
  (match bundle_member "bundle" "journal" b with
  | Json.Arr entries ->
      List.iter
        (fun e ->
          match (Json.member "severity" e, Json.member "event" e) with
          | Some (Json.Str _), Some (Json.Str _) -> ()
          | _ -> Alcotest.fail "journal entry missing severity/event")
        entries
  | _ -> Alcotest.fail "journal section not an array");
  b

let test_violation_bundle () =
  let dir = fresh_dir "jstar-diag-viol" in
  Fun.protect ~finally:(fun () -> cleanup dir) @@ fun () ->
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "step" ]
      ~orderby:Schema.[ Lit "Int"; Seq "step" ]
      ()
  in
  Program.rule p "back_in_time" ~trigger:t (fun ctx s ->
      let step = Tuple.int s "step" in
      if step = 1 then ctx.Rule.put (Tuple.make t [| v_int 0 |]));
  let config =
    {
      Config.default with
      Config.runtime_causality_check = true;
      provenance = true;
    }
  in
  let s = Engine.start (Program.freeze p) config in
  let r = Jstar_ops.Ops.make_recorder ~dir s in
  Engine.feed s [ Tuple.make t [| v_int 1 |] ];
  let raised =
    try
      ignore (Engine.drain s);
      false
    with Engine.Causality_violation _ ->
      (* the bin driver's guard: dump, then let the exception go *)
      ignore
        (Recorder.dump r ~reason:"exception"
           ~detail:[ ("exception", Json.Str "Causality_violation") ]);
      true
  in
  Alcotest.(check bool) "violation raised" true raised;
  let path =
    match Recorder.last_path r with
    | Some p -> p
    | None -> Alcotest.fail "no bundle written"
  in
  let b = check_bundle_schema ~reason:"exception" path in
  (* the violation section names the offending tuple and carries a
     derivation (provenance was on) *)
  (match bundle_member "bundle" "violation" b with
  | Json.Obj fields ->
      (match List.assoc_opt "message" fields with
      | Some (Json.Str msg) ->
          Alcotest.(check bool) "message mentions the past" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "violation without message");
      (match List.assoc_opt "tuples" fields with
      | Some (Json.Arr (tup :: _)) ->
          ignore (bundle_member "violation tuple" "tuple" tup);
          ignore (bundle_member "violation tuple" "derivation" tup)
      | _ -> Alcotest.fail "violation without tuples")
  | Json.Null -> Alcotest.fail "violation section empty"
  | _ -> Alcotest.fail "violation section malformed");
  (* the journal tail recorded the Error event *)
  match bundle_member "bundle" "journal" b with
  | Json.Arr entries ->
      let is_violation e =
        Json.member "event" e = Some (Json.Str "causality-violation")
        && Json.member "severity" e = Some (Json.Str "error")
      in
      Alcotest.(check bool) "journal has the violation event" true
        (List.exists is_violation entries)
  | _ -> Alcotest.fail "journal section not an array"

let test_sigusr1_bundle () =
  let dir = fresh_dir "jstar-diag-sig" in
  Fun.protect ~finally:(fun () -> cleanup dir) @@ fun () ->
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Int"; Seq "x" ]
      ()
  in
  (* the signal arrives from inside a rule firing, so the handler's
     dump runs at a safe point genuinely mid-drain *)
  Program.rule p "chain" ~trigger:t (fun ctx tuple ->
      let x = Tuple.int tuple "x" in
      if x = 8 then Unix.kill (Unix.getpid ()) Sys.sigusr1;
      if x < 16 then ctx.Rule.put (Tuple.make t [| v_int (x + 1) |]));
  let config = { Config.default with Config.shards = 2; digest = true } in
  let s = Engine.start (Program.freeze p) config in
  let r = Jstar_ops.Ops.make_recorder ~dir s in
  let previous = Sys.signal Sys.sigusr1 Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigusr1 previous)
  @@ fun () ->
  Recorder.on_signal r;
  Engine.feed s [ Tuple.make t [| v_int 0 |] ];
  ignore (Engine.drain s);
  let result = Engine.finish s in
  Alcotest.(check int) "one bundle dumped" 1 (Recorder.dumps r);
  let path =
    match Recorder.last_path r with
    | Some p -> p
    | None -> Alcotest.fail "no bundle path"
  in
  let b = check_bundle_schema ~reason:"signal" path in
  (* mid-drain: the session section saw a live step counter, the shard
     section saw the sharded plane *)
  (match bundle_member "bundle" "shards" b with
  | Json.Obj fields -> (
      match List.assoc_opt "count" fields with
      | Some (Json.Num 2.0) -> ()
      | _ -> Alcotest.fail "shard section count wrong")
  | _ -> Alcotest.fail "shards section missing for a sharded run");
  (* the dump did not perturb the run *)
  Alcotest.(check int) "chain completed" 17 result.Engine.steps;
  Alcotest.(check bool) "digest still produced" true
    (result.Engine.digest <> None)

(* ------------------------------------------------------------------ *)
(* Zero impact: digests bit-identical with the diagnostics plane armed
   across the threads x shards grid *)

let grid =
  [ (1, 0); (1, 2); (1, 4); (2, 0); (2, 2); (2, 4); (4, 0); (4, 2); (4, 4) ]

let diag_config ~threads ~shards ~step_hook =
  {
    (Config.parallel ~threads ()) with
    Config.shards;
    put_batching = true;
    tracing = Level.Counters;
    digest = true;
    step_hook;
  }

let test_digest_grid_with_diagnostics () =
  let dir = fresh_dir "jstar-diag-grid" in
  Fun.protect ~finally:(fun () -> cleanup dir) @@ fun () ->
  let run_point ~diagnostics (threads, shards) =
    let p, t = shard_chain_program ~last:40 in
    let frozen = Program.freeze p in
    let alerts =
      if not diagnostics then None
      else
        Some
          (Alerts.create
             [
               Alerts.rule ~for_:2 ~name:"puts"
                 (Alerts.Threshold
                    { metric = "table.T.puts"; cmp = Alerts.Gt; value = 5.0 });
               Alerts.rule ~name:"depth"
                 (Alerts.Rate
                    { metric = "delta.size"; cmp = Alerts.Gt; value = 1000.0 });
               Alerts.rule ~name:"gone" (Alerts.Absent { metric = "nope" });
             ])
    in
    let step_hook =
      Option.map (fun a step m -> Alerts.eval a ~step m) alerts
    in
    let s =
      Engine.start frozen (diag_config ~threads ~shards ~step_hook)
    in
    let recorder =
      if not diagnostics then None
      else begin
        let r = Jstar_ops.Ops.make_recorder ~dir s in
        Option.iter
          (fun a -> Alerts.set_journal a (Engine.session_journal s))
          alerts;
        Some r
      end
    in
    Engine.feed s [ Tuple.make t [| v_int 0 |] ];
    ignore (Engine.drain s);
    (* dump a bundle mid-session: writing the black box must not
       perturb the later drains either *)
    Option.iter (fun r -> ignore (Recorder.dump r ~reason:"test")) recorder;
    Engine.feed s [ Tuple.make t [| v_int 1000 |] ];
    ignore (Engine.drain s);
    let result = Engine.finish s in
    Option.iter
      (fun a -> Alcotest.(check bool) "alert evaluated" true (Alerts.evals a > 0))
      alerts;
    Option.iter
      (fun r -> Alcotest.(check int) "bundle written" 1 (Recorder.dumps r))
      recorder;
    match result.Engine.digest with
    | Some d ->
        ( d.Engine.d_gamma,
          d.Engine.d_classes,
          d.Engine.d_outputs,
          d.Engine.d_tables,
          result.Engine.outputs )
    | None -> Alcotest.fail "digest missing"
  in
  let reference = run_point ~diagnostics:false (1, 0) in
  List.iter
    (fun ((threads, shards) as point) ->
      let plain = run_point ~diagnostics:false point in
      let armed = run_point ~diagnostics:true point in
      let label what =
        Printf.sprintf "%s at threads=%d shards=%d" what threads shards
      in
      Alcotest.(check bool) (label "plain = reference") true
        (plain = reference);
      Alcotest.(check bool) (label "armed = plain") true (armed = plain))
    grid

let suite =
  let tc = Alcotest.test_case in
  [
    ( "diag.journal",
      [
        QCheck_alcotest.to_alcotest prop_journal_ring;
        tc "tail and severity names" `Quick test_journal_tail_and_names;
        tc "runtime min-severity filter" `Quick
          test_journal_min_severity_runtime;
      ] );
    ( "diag.alerts",
      [
        tc "threshold hysteresis machine" `Quick
          test_alert_threshold_hysteresis;
        tc "interrupted pending never fires" `Quick
          test_alert_pending_interrupted;
        tc "absent and rate conditions" `Quick test_alert_absent_and_rate;
        tc "CLI spec parser" `Quick test_alert_parse_spec;
      ] );
    ( "diag.health",
      [ tc "stuck-shard classification" `Quick test_health_shard_status ] );
    ( "diag.flows",
      [ tc "cross-shard flow events in the trace" `Quick test_flow_export ] );
    ( "diag.recorder",
      [
        tc "causality violation bundle" `Quick test_violation_bundle;
        tc "SIGUSR1 mid-drain bundle" `Quick test_sigusr1_bundle;
      ] );
    ( "diag.determinism",
      [
        tc "digests identical with diagnostics armed" `Slow
          test_digest_grid_with_diagnostics;
      ] );
  ]
