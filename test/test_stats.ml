(* Tests for the stats library: dependency-graph construction and DOT
   export (Fig 7), annotated graphs, and phase timers with Amdahl
   bounds (§6.3). *)

open Jstar_core
module Depgraph = Jstar_stats.Depgraph
module Phase_timer = Jstar_obs.Phase_timer

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let pvwatts_like () =
  let p = Program.create () in
  let pv =
    Program.table p "PvWatts"
      ~columns:Schema.[ int_col "month"; int_col "power" ]
      ~orderby:Schema.[ Lit "PvWatts" ] ()
  in
  let sum =
    Program.table p "SumMonth" ~columns:Schema.[ int_col "month" ] ~key:1
      ~orderby:Schema.[ Lit "SumMonth" ] ()
  in
  Program.order p [ "PvWatts"; "SumMonth" ];
  Program.rule p "request" ~trigger:pv
    ~puts:[ Spec.put "SumMonth" ]
    (fun ctx t -> ctx.Rule.put (Tuple.make sum [| Tuple.get t 0 |]));
  Program.rule p "reduce" ~trigger:sum
    ~reads:[ Spec.read ~kind:Spec.Aggregate "PvWatts" ]
    ~puts:[]
    (fun _ _ -> ());
  (p, pv, sum)

let test_depgraph_structure () =
  let p, _, _ = pvwatts_like () in
  let g = Depgraph.of_program p in
  Alcotest.(check int) "2 tables + 2 rules" 4 (List.length g.Depgraph.nodes);
  (* request: trigger edge + put edge; reduce: trigger edge only (no puts
     means its reads produce no edges either, since edges hang off puts,
     but the trigger edge is always there) *)
  Alcotest.(check bool) "has trigger edge PvWatts -> request" true
    (List.exists
       (fun e ->
         e.Depgraph.from_node = Depgraph.Table "PvWatts"
         && e.Depgraph.to_node = Depgraph.Rule_node "request")
       g.Depgraph.edges);
  Alcotest.(check bool) "has put edge request -> SumMonth" true
    (List.exists
       (fun e ->
         e.Depgraph.from_node = Depgraph.Rule_node "request"
         && e.Depgraph.to_node = Depgraph.Table "SumMonth")
       g.Depgraph.edges)

let test_depgraph_dot () =
  let p, _, _ = pvwatts_like () in
  let dot = Depgraph.to_dot (Depgraph.of_program p) in
  List.iter
    (fun needle ->
      if not (contains ~needle dot) then
        Alcotest.failf "DOT output missing %S" needle)
    [ "digraph jstar"; "t_PvWatts"; "t_SumMonth"; "r_request"; "->" ]

let test_depgraph_dot_annotated () =
  let p, pv, _ = pvwatts_like () in
  let init = List.init 5 (fun i -> Tuple.make pv [| Value.Int (1 + (i mod 2)); Value.Int i |]) in
  let r = Engine.run_program ~init p Config.default in
  let dot = Depgraph.to_dot ~stats:r.Engine.stats (Depgraph.of_program p) in
  Alcotest.(check bool) "annotated with put counts" true
    (contains ~needle:"puts=5" dot)

let test_depgraph_write () =
  let p, _, _ = pvwatts_like () in
  let path = Filename.temp_file "jstar_graph" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Depgraph.write_dot (Depgraph.of_program p) path;
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check string) "header" "digraph jstar {" line)

let test_phase_timer () =
  let t = Phase_timer.create () in
  Phase_timer.add t "read" 1.0;
  Phase_timer.add t "compute" 3.0;
  Phase_timer.add t "read" 1.0;
  (* accumulates *)
  Alcotest.(check (float 1e-9)) "total" 5.0 (Phase_timer.total t);
  Alcotest.(check (list (pair string (float 1e-9)))) "phases in order"
    [ ("read", 2.0); ("compute", 3.0) ]
    (Phase_timer.phases t);
  Alcotest.(check (list (pair string (float 1e-9)))) "fractions"
    [ ("read", 0.4); ("compute", 0.6) ]
    (Phase_timer.fractions t)

let test_phase_timer_time () =
  let t = Phase_timer.create () in
  let v = Phase_timer.time t "work" (fun () -> 42) in
  Alcotest.(check int) "returns value" 42 v;
  Alcotest.(check bool) "recorded some time" true (Phase_timer.total t >= 0.0)

let test_amdahl () =
  let t = Phase_timer.create () in
  (* the paper's numbers: serial read 16.9%, the rest parallel over 12 *)
  Phase_timer.add t "read" 0.169;
  Phase_timer.add t "rest" 0.831;
  let bound = Phase_timer.amdahl_bound t ~serial:[ "read" ] ~workers:12 in
  Alcotest.(check (float 0.05)) "paper's 4.2x bound" 4.2 bound

let test_amdahl_all_parallel () =
  let t = Phase_timer.create () in
  Phase_timer.add t "work" 1.0;
  Alcotest.(check (float 1e-9)) "ideal" 8.0
    (Phase_timer.amdahl_bound t ~serial:[] ~workers:8)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "stats.depgraph",
      [
        tc "structure" `Quick test_depgraph_structure;
        tc "DOT export" `Quick test_depgraph_dot;
        tc "annotated DOT" `Quick test_depgraph_dot_annotated;
        tc "write to file" `Quick test_depgraph_write;
      ] );
    ( "stats.phase_timer",
      [
        tc "accumulation and fractions" `Quick test_phase_timer;
        tc "time combinator" `Quick test_phase_timer_time;
        tc "Amdahl bound (paper 4.2x)" `Quick test_amdahl;
        tc "Amdahl all-parallel" `Quick test_amdahl_all_parallel;
      ] );
  ]
