(* Cross-cutting property-based tests (qcheck): order laws for values
   and timestamps, a model-based Delta tree test, store-equivalence
   (every Gamma store family answers queries identically), windowed
   store invariants, scan/reduce laws, and solver coherence. *)

open Jstar_core

let v_int i = Value.Int i

(* ------------------------------------------------------------------ *)
(* Value: total order laws *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 100.0);
        map (fun s -> Value.Str s) (string_size (int_range 0 4));
        map (fun b -> Value.Bool b) bool;
      ])

let value_arb = QCheck.make ~print:Value.show value_gen

let prop_value_compare_total =
  QCheck.Test.make ~name:"Value.compare is a total order" ~count:500
    (QCheck.triple value_arb value_arb value_arb)
    (fun (a, b, c) ->
      let antisym = not (Value.compare a b < 0 && Value.compare b a < 0) in
      let trans =
        if Value.compare a b <= 0 && Value.compare b c <= 0 then
          Value.compare a c <= 0
        else true
      in
      let refl = Value.compare a a = 0 in
      antisym && trans && refl)

let prop_value_hash_consistent =
  QCheck.Test.make ~name:"Value.equal implies equal hashes" ~count:500
    (QCheck.pair value_arb value_arb)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

(* ------------------------------------------------------------------ *)
(* Timestamp: order laws over a mixed-table program *)

let ts_fixture =
  lazy
    (let p = Program.create () in
     let a =
       Program.table p "A"
         ~columns:Schema.[ int_col "step"; int_col "sub" ]
         ~orderby:Schema.[ Lit "Early"; Seq "step"; Seq "sub" ]
         ()
     in
     let b =
       Program.table p "B" ~columns:Schema.[ int_col "step" ]
         ~orderby:Schema.[ Lit "Late"; Seq "step" ]
         ()
     in
     let c =
       Program.table p "C"
         ~columns:Schema.[ int_col "step"; int_col "region" ]
         ~orderby:Schema.[ Lit "Early"; Seq "step"; Par "region" ]
         ()
     in
     Program.order p [ "Early"; "Late" ];
     let order = Program.order_rel p in
     ignore (Order_rel.rank order "Late");
     (order, a, b, c))

let mixed_ts_gen =
  QCheck.Gen.(
    let* which = int_range 0 2 in
    let* step = int_range 0 5 in
    let* sub = int_range 0 3 in
    return (which, step, sub))

let ts_of (which, step, sub) =
  let order, a, b, c = Lazy.force ts_fixture in
  let t =
    match which with
    | 0 -> Tuple.make a [| v_int step; v_int sub |]
    | 1 -> Tuple.make b [| v_int step |]
    | _ -> Tuple.make c [| v_int step; v_int sub |]
  in
  Timestamp.of_tuple order t

let prop_timestamp_total_preorder =
  QCheck.Test.make ~name:"Timestamp.compare is a total preorder" ~count:500
    (QCheck.make QCheck.Gen.(triple mixed_ts_gen mixed_ts_gen mixed_ts_gen))
    (fun (x, y, z) ->
      let a = ts_of x and b = ts_of y and c = ts_of z in
      let total = Timestamp.leq a b || Timestamp.leq b a in
      let trans =
        if Timestamp.leq a b && Timestamp.leq b c then Timestamp.leq a c
        else true
      in
      total && trans)

let prop_timestamp_par_is_congruent =
  QCheck.Test.make ~name:"par fields never affect ordering" ~count:200
    (QCheck.make QCheck.Gen.(triple (int_range 0 5) (int_range 0 3) (int_range 0 3)))
    (fun (step, r1, r2) ->
      let order, _, _, c = Lazy.force ts_fixture in
      let t r = Timestamp.of_tuple order (Tuple.make c [| v_int step; v_int r |]) in
      Timestamp.equal (t r1) (t r2))

(* ------------------------------------------------------------------ *)
(* Delta tree: model-based extraction *)

(* Insert a random multiset of (step, payload) tuples; extraction must
   return one class per distinct step, in ascending step order, whose
   members are exactly the distinct tuples of that step. *)
let delta_model_test mode name =
  QCheck.Test.make ~name ~count:200
    QCheck.(list (pair (int_range 0 9) (int_range 0 5)))
    (fun pairs ->
      let p = Program.create () in
      let t =
        Program.table p "T"
          ~columns:Schema.[ int_col "step"; int_col "payload" ]
          ~orderby:Schema.[ Lit "Int"; Seq "step" ]
          ()
      in
      let order = Program.order_rel p in
      let delta = Delta.create ~mode ~nlits:2 () in
      List.iter
        (fun (s, pl) ->
          let tuple = Tuple.make t [| v_int s; v_int pl |] in
          ignore (Delta.insert delta tuple (Timestamp.of_tuple order tuple)))
        pairs;
      let distinct = List.sort_uniq compare pairs in
      let expected_by_step =
        List.sort_uniq compare (List.map fst distinct)
        |> List.map (fun s ->
               (s, List.sort compare (List.filter_map
                     (fun (s', pl) -> if s' = s then Some pl else None)
                     distinct)))
      in
      let rec drain acc =
        match Delta.extract_min_class delta with
        | [] -> List.rev acc
        | klass ->
            let step = Tuple.int (List.hd klass) "step" in
            let payloads =
              List.sort compare (List.map (fun t -> Tuple.int t "payload") klass)
            in
            drain ((step, payloads) :: acc)
      in
      drain [] = expected_by_step)

let prop_delta_model_seq = delta_model_test Delta.Sequential "delta (seq) = model"
let prop_delta_model_conc = delta_model_test Delta.Concurrent "delta (conc) = model"

(* ------------------------------------------------------------------ *)
(* Store equivalence: all store families answer prefix queries alike *)

let prop_store_equivalence =
  QCheck.Test.make ~name:"tree = skiplist = hash stores" ~count:200
    QCheck.(
      pair
        (list (triple (int_range 0 3) (int_range 0 3) (int_range 0 9)))
        (pair (int_range 0 3) (int_range 0 3)))
    (fun (rows, (qa, qb)) ->
      let p = Program.create () in
      let schema =
        Program.table p "S"
          ~columns:Schema.[ int_col "a"; int_col "b"; int_col "c" ]
          ~orderby:[] ()
      in
      let mk (a, b, c) = Tuple.make schema [| v_int a; v_int b; v_int c |] in
      let stores =
        [
          Store.tree schema;
          Store.skiplist schema;
          Store.hash_index ~prefix_len:2 schema;
        ]
      in
      List.iter
        (fun row -> List.iter (fun s -> ignore (s.Store.insert (mk row))) stores)
        rows;
      let query s prefix =
        let acc = ref [] in
        s.Store.iter_prefix prefix (fun t -> acc := Tuple.show t :: !acc);
        List.sort compare !acc
      in
      let answers prefix = List.map (fun s -> query s prefix) stores in
      let all_equal = function
        | [] -> true
        | x :: rest -> List.for_all (( = ) x) rest
      in
      all_equal (answers [| v_int qa; v_int qb |])
      && all_equal (answers [| v_int qa |])
      && all_equal (answers [||])
      && all_equal (List.map (fun s -> [ string_of_int (s.Store.size ()) ]) stores))

(* ------------------------------------------------------------------ *)
(* Windowed store invariant *)

let prop_windowed_invariant =
  QCheck.Test.make ~name:"windowed store keeps only the window" ~count:200
    QCheck.(list (pair (int_range 0 20) (int_range 0 5)))
    (fun rows ->
      let p = Program.create () in
      let schema =
        Program.table p "W"
          ~columns:Schema.[ int_col "iter"; int_col "x" ]
          ~orderby:[] ()
      in
      let width = 3 in
      let store = Store.windowed ~field:"iter" ~width Store.tree schema in
      List.iter
        (fun (it, x) ->
          ignore (store.Store.insert (Tuple.make schema [| v_int it; v_int x |])))
        rows;
      let high = List.fold_left (fun acc (it, _) -> max acc it) min_int rows in
      let ok = ref true in
      store.Store.iter (fun t ->
          let it = Tuple.int t "iter" in
          if it <= high - width || it > high then ok := false);
      !ok)

(* ------------------------------------------------------------------ *)
(* Scan/reduce laws *)

let prop_scan_last_equals_reduce =
  QCheck.Test.make ~name:"last of scan = reduce" ~count:200
    QCheck.(array small_signed_int)
    (fun arr ->
      let n = Array.length arr in
      n = 0
      ||
      let scanned = Reducer.scan_array Reducer.int_sum arr in
      scanned.(n - 1) = Reducer.reduce_array Reducer.int_sum Fun.id arr)

let prop_parallel_scan_matches =
  QCheck.Test.make ~name:"parallel scan = sequential scan (min monoid)" ~count:20
    QCheck.(array_of_size (QCheck.Gen.int_range 4000 12_000) small_signed_int)
    (fun arr ->
      let pool = Jstar_sched.Pool.create ~num_workers:2 () in
      Fun.protect
        ~finally:(fun () -> Jstar_sched.Pool.shutdown pool)
        (fun () ->
          Reducer.parallel_scan_array pool Reducer.int_min arr
          = Reducer.scan_array Reducer.int_min arr))

(* ------------------------------------------------------------------ *)
(* Difference-logic solver coherence *)

let iexpr_gen =
  QCheck.Gen.(
    let* field = oneofl [ "x"; "y" ] in
    let* off = int_range (-5) 5 in
    oneofl
      [ Spec.Field field; Spec.Add (Spec.Field field, off); Spec.Const off ])

let prop_solver_coherent =
  QCheck.Test.make ~name:"proves_lt implies proves_le; le is transitive"
    ~count:300
    (QCheck.make QCheck.Gen.(triple iexpr_gen iexpr_gen iexpr_gen))
    (fun (a, b, c) ->
      let lt_le =
        if Jstar_causality.Dlsolver.proves_lt [] a b then
          Jstar_causality.Dlsolver.proves_le [] a b
        else true
      in
      let trans =
        if
          Jstar_causality.Dlsolver.proves_le [] a b
          && Jstar_causality.Dlsolver.proves_le [] b c
        then Jstar_causality.Dlsolver.proves_le [] a c
        else true
      in
      lt_le && trans)

(* Semantic soundness: when the expressions mention only field "x",
   provability must match evaluation at arbitrary x. *)
let prop_solver_sound =
  QCheck.Test.make ~name:"proofs hold under evaluation" ~count:300
    (QCheck.make
       QCheck.Gen.(
         triple
           (int_range (-5) 5)
           (int_range (-5) 5)
           (int_range (-100) 100)))
    (fun (off_a, off_b, x) ->
      let a = Spec.Add (Spec.Field "x", off_a)
      and b = Spec.Add (Spec.Field "x", off_b) in
      let eval off = x + off in
      (if Jstar_causality.Dlsolver.proves_le [] a b then
         eval off_a <= eval off_b
       else true)
      &&
      if Jstar_causality.Dlsolver.proves_lt [] a b then eval off_a < eval off_b
      else true)

(* ------------------------------------------------------------------ *)
(* Hot-path knobs (put batching, query acceleration, adaptive grain)
   are pure optimizations: every combination, at every thread count,
   must print exactly the same lines.  Outputs are sorted per step by
   the engine, so plain list equality is the right check.  The [accel]
   axis turns on the aggregate cache plus an aggressive advisor (tiny
   thresholds, so promotions really do land mid-run in these small
   programs). *)

let knob_grid =
  List.concat_map
    (fun threads ->
      List.concat_map
        (fun batching ->
          List.map (fun accel -> (threads, batching, accel)) [ false; true ])
        [ false; true ])
    [ 1; 2; 4 ]

let with_knobs base (batching, accel) =
  {
    base with
    Config.put_batching = batching;
    agg_cache = accel;
    advisor =
      (if accel then
         Some
           {
             Config.adv_warmup = 4;
             adv_min_queries = 2;
             adv_min_size = 1;
             adv_demote_windows = 4;
           }
       else None);
    grain = Config.Auto_grain;
  }

(* [run ~threads knobs] must return the output lines of one engine run;
   all twelve grid points have to agree. *)
let outputs_agree run =
  match
    List.map
      (fun (threads, batching, accel) -> run ~threads (batching, accel))
      knob_grid
  with
  | [] -> true
  | reference :: rest -> List.for_all (fun o -> o = reference) rest

let prop_knobs_closure_invariant =
  QCheck.Test.make
    ~name:"hot-path knobs preserve transitive-closure outputs" ~count:4
    QCheck.(
      list_of_size (Gen.int_range 1 12) (pair (int_range 0 5) (int_range 0 5)))
    (fun edges ->
      outputs_agree (fun ~threads knobs ->
          let p = Program.create () in
          let edge =
            Program.table p "Edge"
              ~columns:Schema.[ int_col "a"; int_col "b" ]
              ~orderby:Schema.[ Lit "Edge" ]
              ()
          in
          let path =
            Program.table p "Path"
              ~columns:Schema.[ int_col "a"; int_col "b" ]
              ~orderby:Schema.[ Lit "Path" ]
              ()
          in
          Program.order p [ "Edge"; "Path" ];
          Program.rule p "seed" ~trigger:edge (fun ctx e ->
              ctx.Rule.put (Tuple.make path [| Tuple.get e 0; Tuple.get e 1 |]));
          Program.rule p "close" ~trigger:path (fun ctx t ->
              let x = Tuple.get t 0 and y = Tuple.int t "b" in
              Query.fold ctx edge ~prefix:[| v_int y |] ~init:()
                ~f:(fun () e ->
                  ctx.Rule.put (Tuple.make path [| x; Tuple.get e 1 |]))
                ());
          Program.output p path (fun t ->
              Printf.sprintf "path %d %d" (Tuple.int t "a") (Tuple.int t "b"));
          let init =
            List.map (fun (a, b) -> Tuple.make edge [| v_int a; v_int b |]) edges
          in
          let base =
            if threads = 1 then Config.default else Config.parallel ~threads ()
          in
          let r = Engine.run_program ~init p (with_knobs base knobs) in
          r.Engine.outputs))

let prop_knobs_pvwatts_invariant =
  QCheck.Test.make ~name:"hot-path knobs preserve PvWatts-small outputs"
    ~count:2
    (QCheck.make QCheck.Gen.(int_range 1 2))
    (fun installations ->
      let data =
        Jstar_csv.Pvwatts_data.to_bytes ~installations
          ~ordering:Jstar_csv.Pvwatts_data.Month_major
      in
      outputs_agree (fun ~threads knobs ->
          let cfg =
            with_knobs (Jstar_apps.Pvwatts.config ~threads ()) knobs
          in
          let r = Jstar_apps.Pvwatts.run ~data cfg in
          r.Engine.outputs))

let suite =
  [
    ( "props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_value_compare_total;
          prop_value_hash_consistent;
          prop_timestamp_total_preorder;
          prop_timestamp_par_is_congruent;
          prop_delta_model_seq;
          prop_delta_model_conc;
          prop_store_equivalence;
          prop_windowed_invariant;
          prop_scan_last_equals_reduce;
          prop_parallel_scan_matches;
          prop_solver_coherent;
          prop_solver_sound;
          prop_knobs_closure_invariant;
          prop_knobs_pvwatts_invariant;
        ] );
  ]
