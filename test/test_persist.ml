(* Durable sessions (PR 5): codec round-trips, WAL framing and tail
   classification (torn vs corrupt), snapshot checkpoints, and the
   crash-recovery property — for random feed schedules at 1/2/4
   threads, killing the log at an arbitrary byte (or flipping one) and
   restoring must reproduce exactly the digests of an uninterrupted run
   over the surviving prefix. *)

open Jstar_core
open Jstar_persist

let v_int i = Value.Int i

(* Fresh scratch directory per test run. *)
let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jstar-persist-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

(* ------------------------------------------------------------------ *)
(* Fixture: session-fed transitive closure *)

type fixture = { f_program : Program.t; f_edge : Schema.t }

let closure_fixture () =
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let path =
    Program.table p "Path"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Path" ]
      ()
  in
  Program.order p [ "Edge"; "Path" ];
  Program.rule p "seed" ~trigger:edge (fun ctx e ->
      ctx.Rule.put (Tuple.make path [| Tuple.get e 0; Tuple.get e 1 |]));
  Program.rule p "close" ~trigger:path (fun ctx t ->
      let x = Tuple.get t 0 and y = Tuple.int t "b" in
      Query.iter ctx edge ~prefix:[| v_int y |] (fun e ->
          ctx.Rule.put (Tuple.make path [| x; Tuple.get e 1 |])));
  Program.output p path (fun t ->
      Printf.sprintf "path %d %d" (Tuple.int t "a") (Tuple.int t "b"));
  { f_program = p; f_edge = edge }

let config_of threads =
  let c = if threads = 1 then Config.default else Config.parallel ~threads () in
  { c with Config.digest = true }

let edge_tuple fx (a, b) = Tuple.make fx.f_edge [| v_int a; v_int b |]

(* A feed schedule: batches of edges, each optionally followed by a
   drain. *)
type event = Batch of (int * int) list | Drain

let apply_durable fx t = function
  | Batch edges -> Durable.feed t (List.map (edge_tuple fx) edges)
  | Drain -> ignore (Durable.drain t)

(* The uninterrupted oracle: a plain engine session run over exactly the
   WAL records that survived, mirroring recovery's tail policy. *)
let surviving (records, tail) =
  match tail with
  | Wal.Clean | Wal.Torn _ -> List.map fst records
  | Wal.Corrupt _ ->
      let kept_to =
        List.fold_left
          (fun acc (r, off) ->
            match r with Wal.Watermark _ -> off | Wal.Feed _ -> acc)
          0 records
      in
      List.filter_map
        (fun (r, off) -> if off <= kept_to then Some r else None)
        records

let replay_plain frozen config records =
  let s = Engine.start frozen config in
  let out_d = Fingerprint.create () in
  List.iter
    (function
      | Wal.Feed ts -> Engine.feed s ts
      | Wal.Watermark _ ->
          List.iter (Fingerprint.mix_string out_d) (Engine.drain s))
    records;
  (s, out_d)

let digest3 result =
  match result.Engine.digest with
  | Some d -> (d.Engine.d_gamma, d.Engine.d_classes, d.Engine.d_outputs)
  | None -> Alcotest.fail "digest missing"

(* Drain-to-quiescence + finish both sessions and require every digest
   to agree. *)
let check_equiv ~what durable (oracle, oracle_out) =
  Alcotest.(check string)
    (what ^ ": gamma digest after restore")
    (Engine.gamma_digest oracle)
    (Engine.gamma_digest (Durable.session durable));
  Alcotest.(check (pair int int))
    (what ^ ": output digest after restore")
    (Fingerprint.lanes oracle_out)
    (Durable.output_lanes durable);
  ignore (Engine.drain oracle);
  ignore (Durable.drain durable);
  let r_oracle = Engine.finish oracle in
  let r_durable = Durable.finish durable in
  Alcotest.(check (triple string string string))
    (what ^ ": final digests")
    (digest3 r_oracle) (digest3 r_durable);
  Alcotest.(check (list string))
    (what ^ ": full output stream")
    r_oracle.Engine.outputs r_durable.Engine.outputs

(* ------------------------------------------------------------------ *)
(* CRC32 + codec *)

let test_crc32 () =
  (* the standard check vector for CRC-32/IEEE *)
  Alcotest.(check int) "123456789" 0xcbf43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int) "slice" 0xcbf43926 (Crc32.bytes b 2 9)

let test_codec_roundtrip () =
  let p = Program.create () in
  let mixed =
    Program.table p "Mixed"
      ~columns:
        Schema.
          [
            int_col "i"; float_col "f"; string_col "s"; bool_col "b";
            float_col "widened";
          ]
      ~orderby:Schema.[ Lit "Mixed" ]
      ()
  in
  let tables = Array.of_list (Program.schemas p) in
  let samples =
    [
      Tuple.make mixed
        [|
          Value.Int 42; Value.Float 2.5; Value.Str "hé\x00llo"; Value.Bool true;
          Value.Float 0.1;
        |];
      (* an Int living in a TFloat column must round-trip as an Int *)
      Tuple.make mixed
        [|
          Value.Int (-7); Value.Float nan; Value.Str ""; Value.Bool false;
          Value.Int 3;
        |];
      Tuple.make mixed
        [|
          Value.Int max_int; Value.Float infinity; Value.Str (String.make 300 'x');
          Value.Bool true; Value.Float (-0.0);
        |];
    ]
  in
  let b = Buffer.create 256 in
  List.iter (Codec.encode_tuple b) samples;
  let src = Buffer.to_bytes b in
  let pos = ref 0 in
  List.iter
    (fun t ->
      let t' = Codec.decode_tuple ~tables src pos in
      Alcotest.(check bool)
        ("round-trips " ^ Tuple.show t)
        true
        (Tuple.equal t t'
        && Array.for_all2
             (fun a b ->
               (* distinguish Int 3 from Float 3.0 representations *)
               Value.type_of a = Value.type_of b)
             (Tuple.fields t) (Tuple.fields t')))
    samples;
  Alcotest.(check int) "consumed all" (Bytes.length src) !pos;
  (* corruption is a Codec_error, not a crash *)
  let src = Buffer.to_bytes b in
  Bytes.set src 0 '\xff';
  Alcotest.check_raises "bad table id"
    (Codec.Codec_error "table id 255 out of range") (fun () ->
      ignore (Codec.decode_tuple ~tables src (ref 0)))

let test_schema_hash () =
  let fx1 = closure_fixture () and fx2 = closure_fixture () in
  let h t = Codec.schema_hash (Array.of_list (Program.schemas t)) in
  Alcotest.(check int)
    "same program, same hash"
    (h fx1.f_program) (h fx2.f_program);
  let p = Program.create () in
  let _ =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; string_col "b" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  Alcotest.(check bool)
    "different column type, different hash" false
    (h fx1.f_program = h p)

(* ------------------------------------------------------------------ *)
(* WAL framing *)

let wal_fixture_write dir fx events =
  let tables = Array.of_list (Program.schemas fx.f_program) in
  let hash = Codec.schema_hash tables in
  let path = Filename.concat dir "wal-0.log" in
  let w = Wal.create path ~schema_hash:hash ~policy:Wal.Never in
  let n = ref 0 in
  List.iter
    (function
      | Batch edges ->
          Wal.append_feed w (List.map (edge_tuple fx) edges)
      | Drain ->
          incr n;
          Wal.append_watermark w
            {
              Wal.wm_step_no = !n;
              wm_steps = !n;
              wm_processed = !n;
              wm_outputs_count = !n;
              wm_seq_lanes = (!n, - !n);
              wm_out_lanes = (2 * !n, 3 * !n);
            })
    events;
  Wal.close w;
  (path, tables, hash)

(* Every_ms group commit: commits inside the window ride the page cache
   (counted as coalesced); one past the window pays the fsync. *)
let test_wal_every_ms_group_commit () =
  let dir = fresh_dir () in
  let fx = closure_fixture () in
  let tables = Array.of_list (Program.schemas fx.f_program) in
  let hash = Codec.schema_hash tables in
  let path = Filename.concat dir "wal-ms.log" in
  let w = Wal.create path ~schema_hash:hash ~policy:(Wal.Every_ms 200) in
  Wal.append_feed w [ edge_tuple fx (1, 2) ];
  Wal.commit w;
  Wal.append_feed w [ edge_tuple fx (2, 3) ];
  Wal.commit w;
  Alcotest.(check int) "inside the window: no fsync" 0 (Wal.fsyncs w);
  Alcotest.(check int) "both commits coalesced" 2 (Wal.coalesced_syncs w);
  Unix.sleepf 0.25;
  Wal.append_feed w [ edge_tuple fx (3, 4) ];
  Wal.commit w;
  Alcotest.(check int) "past the window: one fsync" 1 (Wal.fsyncs w);
  Alcotest.(check int) "lag drained" 0 (Wal.lag w).Wal.lag_records;
  Wal.close w;
  (* the records are all readable back regardless of sync timing *)
  let records, tail = Wal.read path ~tables ~expect_hash:hash in
  Alcotest.(check int) "all records present" 3 (List.length records);
  Alcotest.(check bool) "clean tail" true (tail = Wal.Clean)

(* The durable session surfaces the policy and its counters for the
   ops plane. *)
let test_durable_every_ms_lanes () =
  let dir = fresh_dir () in
  let fx = closure_fixture () in
  let frozen = Program.freeze fx.f_program in
  let d, _ =
    Durable.open_ ~fsync:(Wal.Every_ms 150) ~dir frozen (config_of 1)
  in
  Alcotest.(check string)
    "policy name" "every-ms-150" (Durable.fsync_policy_name d);
  Durable.feed d [ edge_tuple fx (1, 2) ];
  ignore (Durable.drain d);
  Alcotest.(check bool)
    "commits coalesced inside the window" true
    (Durable.wal_coalesced_syncs d > 0);
  ignore (Durable.finish d)

let test_wal_roundtrip () =
  let fx = closure_fixture () in
  let events =
    [ Batch [ (1, 2); (2, 3) ]; Drain; Batch []; Batch [ (9, 9) ]; Drain ]
  in
  let path, tables, hash = wal_fixture_write (fresh_dir ()) fx events in
  let records, tail = Wal.read path ~tables ~expect_hash:hash in
  Alcotest.(check bool) "clean tail" true (tail = Wal.Clean);
  Alcotest.(check int) "record count" (List.length events) (List.length records);
  (match List.map fst records with
  | [ Wal.Feed [ a; b ]; Wal.Watermark w1; Wal.Feed []; Wal.Feed [ c ];
      Wal.Watermark w2 ] ->
      Alcotest.(check bool)
        "tuples round-trip" true
        (Tuple.equal a (edge_tuple fx (1, 2))
        && Tuple.equal b (edge_tuple fx (2, 3))
        && Tuple.equal c (edge_tuple fx (9, 9)));
      Alcotest.(check (pair int int)) "lanes" (2, 3) w1.Wal.wm_out_lanes;
      Alcotest.(check int) "second watermark" 2 w2.Wal.wm_step_no
  | _ -> Alcotest.fail "unexpected record shapes");
  (* wrong schema hash refused *)
  Alcotest.(check bool)
    "schema hash checked" true
    (match Wal.read path ~tables ~expect_hash:(hash + 1) with
    | exception Wal.Wal_error _ -> true
    | _ -> false)

let test_wal_torn_tail () =
  let fx = closure_fixture () in
  let events = [ Batch [ (1, 2) ]; Drain; Batch [ (3, 4) ] ] in
  let path, tables, hash = wal_fixture_write (fresh_dir ()) fx events in
  let full = (Unix.stat path).Unix.st_size in
  (* chop one byte: the final feed record becomes torn; the records
     before it — including the watermark — survive *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (full - 1);
  Unix.close fd;
  let records, tail = Wal.read path ~tables ~expect_hash:hash in
  (match tail with
  | Wal.Torn _ -> ()
  | _ -> Alcotest.fail "expected torn tail");
  Alcotest.(check int) "prefix survives" 2 (List.length records)

let test_wal_bitflip_is_corrupt () =
  let fx = closure_fixture () in
  let events = [ Batch [ (1, 2) ]; Drain; Batch [ (3, 4) ]; Drain ] in
  let path, tables, hash = wal_fixture_write (fresh_dir ()) fx events in
  let records, _ = Wal.read path ~tables ~expect_hash:hash in
  (* flip one payload byte inside the second record (the watermark) *)
  let first_end = snd (List.hd records) in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd (first_end + 7) Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
  ignore (Unix.lseek fd (first_end + 7) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let records', tail = Wal.read path ~tables ~expect_hash:hash in
  (match tail with
  | Wal.Corrupt off ->
      Alcotest.(check int) "corruption located" first_end off
  | _ -> Alcotest.fail "expected corrupt tail");
  Alcotest.(check int) "only the first record survives" 1 (List.length records')

(* ------------------------------------------------------------------ *)
(* Durable sessions: deterministic flows *)

let run_durable ?(checkpoint_every = 0) ?(fsync = Wal.Never) ~threads dir fx
    events =
  let frozen = Program.freeze fx.f_program in
  let t, status =
    Durable.open_ ~checkpoint_every ~fsync ~dir frozen (config_of threads)
  in
  List.iter (apply_durable fx t) events;
  (t, status)

let schedule_a =
  [
    Batch [ (0, 1); (1, 2) ];
    Drain;
    Batch [ (2, 3) ];
    Batch [ (3, 4) ];
    Drain;
    Batch [ (4, 0); (1, 4) ];
    Drain;
  ]

let test_durable_restart_clean () =
  (* stop without finishing, reopen: the WAL replays the whole session
     and the restored digests match an uninterrupted run *)
  let dir = fresh_dir () in
  let fx = closure_fixture () in
  let t, status = run_durable ~threads:2 dir fx schedule_a in
  Alcotest.(check bool) "fresh open" true (status = Durable.Fresh);
  ignore (Durable.finish t);
  let fx2 = closure_fixture () in
  let frozen = Program.freeze fx2.f_program in
  let t2, status2 = Durable.open_ ~dir frozen (config_of 1) in
  (match status2 with
  | Durable.Restored r ->
      Alcotest.(check int) "three drains replayed" 3 r.Durable.r_drains;
      Alcotest.(check bool) "clean tail" true (r.Durable.r_wal_tail = Wal.Clean)
  | Durable.Fresh -> Alcotest.fail "expected restore");
  let tables = Array.of_list (Program.schemas fx2.f_program) in
  let hash = Codec.schema_hash tables in
  let oracle =
    replay_plain frozen (config_of 1)
      (surviving
         (Wal.read (Durable.wal_path t2) ~tables ~expect_hash:hash))
  in
  check_equiv ~what:"clean restart" t2 oracle

let test_durable_checkpoint_and_restore () =
  let dir = fresh_dir () in
  let fx = closure_fixture () in
  (* checkpoint after every drain: three generations retired *)
  let t, _ = run_durable ~checkpoint_every:1 ~threads:1 dir fx schedule_a in
  Alcotest.(check int) "generation advanced" 3 (Durable.generation t);
  Alcotest.(check bool)
    "old generations deleted" false
    (Sys.file_exists (Filename.concat dir "wal-0.log")
    || Sys.file_exists (Filename.concat dir "snap-1"));
  let uninterrupted = Durable.finish t in
  (* restart: everything comes back from snapshot 3 + an empty log *)
  let fx2 = closure_fixture () in
  let t2, status = Durable.open_ ~dir (Program.freeze fx2.f_program) (config_of 4) in
  (match status with
  | Durable.Restored r ->
      Alcotest.(check int) "restored from gen 3" 3 r.Durable.r_gen;
      Alcotest.(check int) "no WAL records to replay" 0
        (r.Durable.r_feeds + r.Durable.r_drains)
  | Durable.Fresh -> Alcotest.fail "expected restore");
  ignore (Durable.drain t2);
  let restored = Durable.finish t2 in
  Alcotest.(check (triple string string string))
    "digests survive snapshot round-trip"
    (digest3 uninterrupted) (digest3 restored);
  Alcotest.(check (list string))
    "outputs survive snapshot round-trip"
    uninterrupted.Engine.outputs restored.Engine.outputs

let test_checkpoint_requires_quiescence () =
  let dir = fresh_dir () in
  let fx = closure_fixture () in
  let t, _ = run_durable ~threads:1 dir fx [ Batch [ (1, 2) ] ] in
  Alcotest.(check bool)
    "pending tuples counted" true
    (Engine.session_pending (Durable.session t) > 0);
  (match Durable.checkpoint t with
  | () -> Alcotest.fail "checkpoint accepted pending tuples"
  | exception Invalid_argument _ -> ());
  ignore (Durable.drain t);
  Durable.checkpoint t;
  ignore (Durable.finish t)

let test_corrupt_snapshot_detected () =
  let dir = fresh_dir () in
  let fx = closure_fixture () in
  let t, _ = run_durable ~checkpoint_every:1 ~threads:1 dir fx schedule_a in
  let gen = Durable.generation t in
  ignore (Durable.finish t);
  (* flip a byte inside the Path segment *)
  let seg =
    Filename.concat dir
      (Filename.concat (Printf.sprintf "snap-%d" gen) "seg-Path.dat")
  in
  let fd = Unix.openfile seg [ Unix.O_RDWR ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd (size - 3) Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
  ignore (Unix.lseek fd (size - 3) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let fx2 = closure_fixture () in
  Alcotest.(check bool)
    "restore refuses corrupt segment" true
    (match Durable.open_ ~dir (Program.freeze fx2.f_program) (config_of 1) with
    | exception Durable.Recovery_error _ -> true
    | _ -> false)

let test_schema_change_detected () =
  let dir = fresh_dir () in
  let fx = closure_fixture () in
  let t, _ = run_durable ~threads:1 dir fx [ Batch [ (1, 2) ]; Drain ] in
  ignore (Durable.finish t);
  let p = Program.create () in
  let _ =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; int_col "b"; int_col "w" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  Alcotest.(check bool)
    "restore refuses changed schema" true
    (match Durable.open_ ~dir (Program.freeze p) Config.default with
    | exception Durable.Recovery_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Crash-recovery properties *)

let schedule_gen =
  QCheck.Gen.(
    let batch =
      list_size (int_range 0 3)
        (pair (int_range 0 5) (int_range 0 5))
    in
    list_size (int_range 1 8)
      (oneof [ map (fun b -> Batch b) batch; return Drain ]))

let schedule_print events =
  String.concat ";"
    (List.map
       (function
         | Drain -> "drain"
         | Batch es ->
             "batch["
             ^ String.concat ","
                 (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) es)
             ^ "]")
       events)

(* Kill at an arbitrary byte: write the schedule durably, truncate the
   log at every interesting offset in turn, restore, and require the
   digests of an uninterrupted run over the surviving records. *)
let prop_crash_recovery =
  QCheck.Test.make ~name:"crash at any WAL byte restores a digest-equal run"
    ~count:20
    (QCheck.make ~print:(fun (e, t, c) ->
         Printf.sprintf "%s threads=%d cut=%d" (schedule_print e) t c)
       QCheck.Gen.(
         triple schedule_gen (oneofl [ 1; 2; 4 ]) (int_range 0 1000)))
    (fun (events, threads, cut_seed) ->
      let dir = fresh_dir () in
      let fx = closure_fixture () in
      let t, _ = run_durable ~threads dir fx events in
      ignore (Durable.finish t);
      let path = Filename.concat dir "wal-0.log" in
      let size = (Unix.stat path).Unix.st_size in
      (* cut anywhere from "everything after the header lost" to "nothing
         lost" *)
      let cut = Wal.header_len + (cut_seed * (size - Wal.header_len) / 1000) in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd cut;
      Unix.close fd;
      let fx2 = closure_fixture () in
      let frozen = Program.freeze fx2.f_program in
      let tables = Array.of_list (Program.schemas fx2.f_program) in
      let hash = Codec.schema_hash tables in
      let records = surviving (Wal.read path ~tables ~expect_hash:hash) in
      let t2, status = Durable.open_ ~dir frozen (config_of threads) in
      (match status with
      | Durable.Restored _ -> ()
      | Durable.Fresh -> QCheck.Test.fail_report "expected restore");
      check_equiv ~what:"crash recovery" t2
        (replay_plain frozen (config_of 1) records);
      true)

(* Bit-flip: corrupting any single WAL byte must either leave a
   still-valid prefix (when the flip lands past the last watermark) or
   roll recovery back to the last watermark — never crash, never
   restore undetected-bad state. *)
let prop_bitflip_recovery =
  QCheck.Test.make
    ~name:"bit-flipped WAL record rolls back to the last watermark" ~count:20
    (QCheck.make ~print:(fun (e, t, o, bit) ->
         Printf.sprintf "%s threads=%d off=%d bit=%d" (schedule_print e) t o bit)
       QCheck.Gen.(
         quad schedule_gen (oneofl [ 1; 2; 4 ]) (int_range 0 1000)
           (int_range 0 7)))
    (fun (events, threads, off_seed, bit) ->
      let dir = fresh_dir () in
      let fx = closure_fixture () in
      (* guarantee at least one record so there is a byte to flip *)
      let events = Batch [ (0, 1) ] :: events @ [ Drain ] in
      let t, _ = run_durable ~threads dir fx events in
      ignore (Durable.finish t);
      let path = Filename.concat dir "wal-0.log" in
      let size = (Unix.stat path).Unix.st_size in
      let off =
        Wal.header_len
        + (off_seed * (size - Wal.header_len - 1) / 1000)
      in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl bit)));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      let fx2 = closure_fixture () in
      let frozen = Program.freeze fx2.f_program in
      let tables = Array.of_list (Program.schemas fx2.f_program) in
      let hash = Codec.schema_hash tables in
      let records = surviving (Wal.read path ~tables ~expect_hash:hash) in
      let t2, status = Durable.open_ ~dir frozen (config_of threads) in
      (match status with
      | Durable.Restored _ -> ()
      | Durable.Fresh -> QCheck.Test.fail_report "expected restore");
      check_equiv ~what:"bit flip" t2
        (replay_plain frozen (config_of 1) records);
      true)

(* Checkpoint + crash: a random prefix checkpoints, the tail of the log
   is lost, and recovery must land exactly on snapshot + surviving
   suffix. *)
let prop_checkpoint_then_crash =
  QCheck.Test.make
    ~name:"checkpoint + truncated WAL suffix restores digest-equal state"
    ~count:15
    (QCheck.make ~print:(fun (e, t, c) ->
         Printf.sprintf "%s threads=%d cut=%d" (schedule_print e) t c)
       QCheck.Gen.(
         triple schedule_gen (oneofl [ 1; 2; 4 ]) (int_range 0 1000)))
    (fun (events, threads, cut_seed) ->
      let dir = fresh_dir () in
      let fx = closure_fixture () in
      (* force a checkpoint in the middle of the schedule *)
      let events = (Batch [ (0, 1) ] :: events) @ [ Drain ] in
      let frozen = Program.freeze fx.f_program in
      let t, _ =
        Durable.open_ ~checkpoint_every:0 ~fsync:Wal.Never ~dir frozen
          (config_of threads)
      in
      let half = List.length events / 2 in
      List.iteri
        (fun i ev ->
          apply_durable fx t ev;
          if i = half then begin
            (match ev with Drain -> () | Batch _ -> ignore (Durable.drain t));
            Durable.checkpoint t
          end)
        events;
      let gen = Durable.generation t in
      (* events fed after the checkpoint live only in the current WAL *)
      ignore (Durable.finish t);
      let path = Filename.concat dir (Printf.sprintf "wal-%d.log" gen) in
      let size = (Unix.stat path).Unix.st_size in
      let cut = Wal.header_len + (cut_seed * (size - Wal.header_len) / 1000) in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd cut;
      Unix.close fd;
      (* oracle: reconstruct the full surviving history = snapshot
         contents (itself provably digest-equal) + WAL suffix; easiest
         faithful oracle is a second durable restore onto 1 thread *)
      let fx2 = closure_fixture () in
      let frozen2 = Program.freeze fx2.f_program in
      let t2, s2 = Durable.open_ ~dir frozen2 (config_of threads) in
      (match s2 with
      | Durable.Restored r ->
          if r.Durable.r_gen <> gen then
            QCheck.Test.fail_reportf "restored from gen %d, wrote %d"
              r.Durable.r_gen gen
      | Durable.Fresh -> QCheck.Test.fail_report "expected restore");
      let fx3 = closure_fixture () in
      let frozen3 = Program.freeze fx3.f_program in
      let t3, _ = Durable.open_ ~dir frozen3 (config_of 1) in
      ignore (Durable.drain t2);
      ignore (Durable.drain t3);
      let r2 = Durable.finish t2 and r3 = Durable.finish t3 in
      if digest3 r2 <> digest3 r3 then
        QCheck.Test.fail_report "thread-count digests diverge after restore";
      if r2.Engine.outputs <> r3.Engine.outputs then
        QCheck.Test.fail_report "outputs diverge after restore";
      true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "persist",
      [
        Alcotest.test_case "crc32 vectors" `Quick test_crc32;
        Alcotest.test_case "codec round-trip + corruption" `Quick
          test_codec_roundtrip;
        Alcotest.test_case "schema hash" `Quick test_schema_hash;
        Alcotest.test_case "wal round-trip" `Quick test_wal_roundtrip;
        Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
        Alcotest.test_case "wal bit flip = corrupt" `Quick
          test_wal_bitflip_is_corrupt;
        Alcotest.test_case "wal every-ms group commit" `Quick
          test_wal_every_ms_group_commit;
        Alcotest.test_case "durable every-ms counters" `Quick
          test_durable_every_ms_lanes;
        Alcotest.test_case "restart replays the log" `Quick
          test_durable_restart_clean;
        Alcotest.test_case "checkpoint + restore" `Quick
          test_durable_checkpoint_and_restore;
        Alcotest.test_case "checkpoint requires quiescence" `Quick
          test_checkpoint_requires_quiescence;
        Alcotest.test_case "corrupt snapshot refused" `Quick
          test_corrupt_snapshot_detected;
        Alcotest.test_case "schema change refused" `Quick
          test_schema_change_detected;
      ]
      @ qsuite
          [
            prop_crash_recovery;
            prop_bitflip_recovery;
            prop_checkpoint_then_crash;
          ] );
  ]
