(* End-to-end ops-plane smoke (the @ops-smoke alias): attach the
   introspection server to a live durable session on an ephemeral port,
   scrape every endpoint over real sockets — including concurrently
   with the drain loop — and check shapes, not timings.  Exit 0 =
   healthy; any failure raises. *)

open Jstar_core

let fail fmt = Printf.ksprintf failwith fmt

(* Minimal HTTP GET: returns (status, headers, body). *)
let http_get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            slurp ()
      in
      slurp ();
      let raw = Buffer.contents buf in
      match String.index_opt raw '\r' with
      | None -> fail "%s: no status line" path
      | Some _ -> (
          let status =
            match String.split_on_char ' ' raw with
            | _ :: code :: _ -> int_of_string code
            | _ -> fail "%s: malformed status line" path
          in
          let rec find_body i =
            if i + 3 >= String.length raw then fail "%s: no header end" path
            else if
              raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
              && raw.[i + 3] = '\n'
            then String.sub raw (i + 4) (String.length raw - i - 4)
            else find_body (i + 1)
          in
          let body = find_body 0 in
          match String.index_opt raw '\n' with
          | _ -> (status, String.sub raw 0 (String.length raw - String.length body), body)))

let expect_status path want (status, _, body) =
  if status <> want then
    fail "%s: status %d (want %d); body: %s" path status want body;
  body

let json_of path body =
  match Jstar_obs.Json.of_string (String.trim body) with
  | Ok j -> j
  | Error e -> fail "%s: bad JSON (%s): %s" path e body

let member path key j =
  match Jstar_obs.Json.member key j with
  | Some v -> v
  | None -> fail "%s: missing %S field" path key

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jstar-ops-smoke-%d" (Unix.getpid ())) in
  let p = Program.create () in
  let tick =
    Program.table p "Tick" ~columns:Schema.[ int_col "t" ]
      ~orderby:Schema.[ Lit "Tick"; Seq "t" ] ()
  in
  let double =
    Program.table p "Double" ~columns:Schema.[ int_col "t"; int_col "v" ]
      ~orderby:Schema.[ Lit "Double"; Seq "t" ] ()
  in
  Program.order p [ "Tick"; "Double" ];
  Program.rule p "double" ~trigger:tick (fun ctx t ->
      let x = Tuple.int t "t" in
      ctx.Rule.put (Tuple.make double [| Value.Int x; Value.Int (2 * x) |]));
  Program.output p double (fun t ->
      Printf.sprintf "double %d %d" (Tuple.int t "t") (Tuple.int t "v"));
  let frozen = Program.freeze p in
  (* a threshold alert that is sure to fire over 200 drains, evaluated
     at every step barrier through the engine's step hook *)
  let alerts =
    Jstar_obs.Alerts.create
      [
        Jstar_obs.Alerts.rule ~for_:2 ~name:"busy"
          (Jstar_obs.Alerts.Threshold
             {
               metric = "table.Tick.puts";
               cmp = Jstar_obs.Alerts.Gt;
               value = 10.0;
             });
      ]
  in
  let config =
    {
      (Config.parallel ~threads:2 ()) with
      Config.tracing = Jstar_obs.Level.Counters;
      provenance = true;
      digest = true;
      step_hook =
        Some (fun step m -> Jstar_obs.Alerts.eval alerts ~step m);
    }
  in
  let d, status = Jstar_persist.Durable.open_ ~dir frozen config in
  (match status with
  | Jstar_persist.Durable.Fresh -> ()
  | _ -> fail "expected a fresh durable session");
  let session = Jstar_persist.Durable.session d in
  Jstar_obs.Alerts.set_journal alerts (Engine.session_journal session);
  let flight_dir = Filename.concat dir "flight" in
  let recorder = Jstar_ops.Ops.make_recorder ~dir:flight_dir session in
  let ops =
    Jstar_ops.Ops.attach ~port:0 ~alerts ~recorder
      ~extra_health:(fun () ->
        let lag = Jstar_persist.Durable.wal_lag d in
        [
          ( "wal",
            Jstar_obs.Json.Obj
              [
                ( "fsync",
                  Jstar_obs.Json.Str
                    (Jstar_persist.Durable.fsync_policy_name d) );
                ( "lag_records",
                  Jstar_obs.Json.Num
                    (float_of_int lag.Jstar_persist.Wal.lag_records) );
              ] );
        ])
      session
  in
  let port = Jstar_ops.Ops.port ops in

  (* Scrape from a second thread WHILE the driving thread feeds and
     drains: the endpoints must answer mid-run without perturbing it. *)
  let scrape_errors = ref [] in
  let scraper =
    Thread.create
      (fun () ->
        try
          for _ = 1 to 20 do
            ignore (expect_status "/metrics" 200 (http_get ~port "/metrics"));
            ignore (expect_status "/health" 200 (http_get ~port "/health"));
            Thread.yield ()
          done
        with e -> scrape_errors := Printexc.to_string e :: !scrape_errors)
      ()
  in
  for t = 0 to 199 do
    Jstar_persist.Durable.feed d [ Tuple.make tick [| Value.Int t |] ];
    ignore (Jstar_persist.Durable.drain d)
  done;
  Thread.join scraper;
  (match !scrape_errors with
  | [] -> ()
  | e :: _ -> fail "concurrent scrape failed: %s" e);

  (* /metrics: Prometheus text format with the engine families. *)
  let metrics = expect_status "/metrics" 200 (http_get ~port "/metrics") in
  List.iter
    (fun needle ->
      let found =
        List.exists
          (fun l ->
            String.length l >= String.length needle
            && String.sub l 0 (String.length needle) = needle)
          (String.split_on_char '\n' metrics)
      in
      if not found then fail "/metrics: missing %S in:\n%s" needle metrics)
    [
      "# TYPE jstar_table_puts counter";
      "jstar_table_puts{table=\"Tick\"}";
      "jstar_gamma_size{table=\"Double\"}";
      "jstar_profiler_steps";
      "jstar_sched_tasks";
      "jstar_sched_utilization";
      "jstar_gc_alloc_words";
    ];

  (* /health: the heartbeat with session scalars and the WAL extras. *)
  let health =
    json_of "/health" (expect_status "/health" 200 (http_get ~port "/health"))
  in
  (match member "/health" "status" health with
  | Jstar_obs.Json.Str "ok" -> ()
  | _ -> fail "/health: status not ok");
  (match member "/health" "outputs" health with
  | Jstar_obs.Json.Num n when n = 200.0 -> ()
  | Jstar_obs.Json.Num n -> fail "/health: outputs = %f, want 200" n
  | _ -> fail "/health: outputs not a number");
  let wal = member "/health" "wal" health in
  (match member "/health wal" "fsync" wal with
  | Jstar_obs.Json.Str "always" -> ()
  | _ -> fail "/health: wal.fsync not always");

  (* /profile: top rules must include the only rule, marked
     non-deterministic. *)
  let profile =
    json_of "/profile"
      (expect_status "/profile" 200 (http_get ~port "/profile?k=3"))
  in
  (match member "/profile" "deterministic" profile with
  | Jstar_obs.Json.Bool false -> ()
  | _ -> fail "/profile: deterministic flag wrong");
  (match member "/profile" "top_rules" profile with
  | Jstar_obs.Json.Arr (_ :: _) -> ()
  | _ -> fail "/profile: no rules listed");

  (* /explain: a derivation tree for Double(7, 14) rooted at the rule. *)
  let explain =
    json_of "/explain"
      (expect_status "/explain" 200
         (http_get ~port "/explain?table=Double&tuple=7"))
  in
  (match member "/explain" "matches" explain with
  | Jstar_obs.Json.Num 1.0 -> ()
  | _ -> fail "/explain: expected exactly one match");
  (match member "/explain" "trees" explain with
  | Jstar_obs.Json.Arr [ tree ] -> (
      match Jstar_obs.Json.member "rule" tree with
      | Some (Jstar_obs.Json.Str "double") -> ()
      | _ -> fail "/explain: tree not rooted at rule 'double'")
  | _ -> fail "/explain: expected one tree");

  (* /alerts: every rule's status; the puts threshold fired long ago,
     and firing alerts ride /metrics in the ALERTS convention. *)
  let alerts_body =
    json_of "/alerts" (expect_status "/alerts" 200 (http_get ~port "/alerts"))
  in
  (match member "/alerts" "alerts" alerts_body with
  | Jstar_obs.Json.Arr [ a ] -> (
      (match Jstar_obs.Json.member "name" a with
      | Some (Jstar_obs.Json.Str "busy") -> ()
      | _ -> fail "/alerts: rule name wrong");
      match Jstar_obs.Json.member "state" a with
      | Some (Jstar_obs.Json.Str "firing") -> ()
      | Some (Jstar_obs.Json.Str s) -> fail "/alerts: state %s, want firing" s
      | _ -> fail "/alerts: no state")
  | _ -> fail "/alerts: expected one alert status");
  (match member "/alerts" "evals" alerts_body with
  | Jstar_obs.Json.Num n when n > 0.0 -> ()
  | _ -> fail "/alerts: no evals counted");
  let metrics = expect_status "/metrics" 200 (http_get ~port "/metrics") in
  let has_alert_sample =
    List.exists
      (fun l ->
        let needle = "ALERTS{alertname=\"busy\",alertstate=\"firing\"}" in
        String.length l >= String.length needle
        && String.sub l 0 (String.length needle) = needle)
      (String.split_on_char '\n' metrics)
  in
  if not has_alert_sample then fail "/metrics: no ALERTS sample:\n%s" metrics;

  (* /dump: writes one bundle and reports its path; the file is a
     parseable flight-recorder bundle. *)
  let dump =
    json_of "/dump" (expect_status "/dump" 200 (http_get ~port "/dump"))
  in
  let bundle_path =
    match member "/dump" "path" dump with
    | Jstar_obs.Json.Str p -> p
    | _ -> fail "/dump: no path"
  in
  if not (Sys.file_exists bundle_path) then
    fail "/dump: bundle %s not on disk" bundle_path;
  let bundle =
    let ic = open_in bundle_path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    json_of "bundle" s
  in
  (match member "bundle" "schema" bundle with
  | Jstar_obs.Json.Str s when s = Jstar_obs.Recorder.schema_version -> ()
  | _ -> fail "bundle: wrong schema version");
  (match member "bundle" "reason" bundle with
  | Jstar_obs.Json.Str "ops-dump" -> ()
  | _ -> fail "bundle: wrong reason");
  List.iter
    (fun k -> ignore (member "bundle" k bundle))
    [ "journal"; "metrics"; "session"; "profiler" ];

  (* A server attached without alerting or a recorder 404s both. *)
  let bare = Jstar_ops.Ops.attach ~port:0 session in
  let bare_port = Jstar_ops.Ops.port bare in
  ignore
    (expect_status "/alerts off" 404 (http_get ~port:bare_port "/alerts"));
  ignore (expect_status "/dump off" 404 (http_get ~port:bare_port "/dump"));
  Jstar_ops.Ops.stop bare;

  (* Error paths: unknown endpoint, bad table, bad value. *)
  ignore (expect_status "/nope" 404 (http_get ~port "/nope"));
  ignore
    (expect_status "/explain bad table" 400
       (http_get ~port "/explain?table=Nope"));
  ignore
    (expect_status "/explain bad value" 400
       (http_get ~port "/explain?table=Double&tuple=xyz"));

  Jstar_ops.Ops.stop ops;
  (* Stopped: connections are refused, the port is released. *)
  (match http_get ~port "/health" with
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
  | _ ->
      (* Some kernels let one queued connection through; a second must
         fail. *)
      (match http_get ~port "/health" with
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
      | _ -> fail "server still answering after stop"));
  ignore (Jstar_persist.Durable.finish d);
  (* Clean the durable directory. *)
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  (try rm_rf dir with Sys_error _ -> ());
  print_endline "ops-smoke: all endpoints healthy"
