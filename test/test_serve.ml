(* jstar-serve (PR 10): the wire protocol round-trips every frame and
   rejects every mangled one without crashing; the server end to end —
   garbage bytes get a clean Err frame, admission control refuses
   excess sessions and connections, backpressure engages at the feed
   quota, idle sessions are evicted and recover on reopen, and
   branch → feed → merge lands on exactly the digests of a
   single-session oracle at 1/2/4 engine threads. *)

open Jstar_core
module Serve = Jstar_serve
module P = Jstar_serve.Protocol

let frozen = Serve.Demo.sensor_program ()
let tables = frozen.Program.tables
let schema_hash = Jstar_persist.Codec.schema_hash tables

let tmp_counter = ref 0

let fresh_root () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "jstar-serve-%d-%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_server ?(max_sessions = 16) ?(max_connections = 16)
    ?(feed_quota = 4096) ?(idle_timeout = 0.0) ?(engine = Config.default) f =
  let root = fresh_root () in
  let server =
    Serve.Server.start
      {
        (Serve.Server.default_config ~root) with
        Serve.Server.max_sessions;
        max_connections;
        feed_quota;
        idle_timeout;
        fsync = Jstar_persist.Wal.Never;
        engine;
      }
      frozen
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      rm_rf root)
    (fun () -> f server)

(* ------------------------------------------------------------------ *)
(* Frame round-trips (qcheck) *)

let tuple_gen =
  QCheck.Gen.(
    let* i = int_range 0 (Array.length tables - 1) in
    let schema = tables.(i) in
    let* vals =
      array_repeat (Schema.arity schema) (map (fun n -> Value.Int n) small_nat)
    in
    return (Tuple.make schema vals))

let watermark_gen =
  QCheck.Gen.(
    let* a = small_nat and* b = small_nat and* c = nat and* d = nat in
    let* e = nat and* f = nat in
    return
      {
        P.w_steps = a;
        w_outputs = b;
        w_seq_lanes = (c, d);
        w_out_lanes = (e, f);
      })

let client_frame_gen =
  QCheck.Gen.(
    oneof
      [
        (let* v = small_nat and* h = nat in
         return (P.Hello { version = v; schema_hash = h land 0xffffffff }));
        map (fun s -> P.Open s) string_small;
        (let* ts = list_size (int_range 0 6) tuple_gen in
         return (P.Feed ts));
        return P.Drain;
        map (fun s -> P.Branch s) string_small;
        map (fun s -> P.Merge s) string_small;
        return P.Digest;
        return P.Checkpoint;
        return P.Bye;
      ])

let server_frame_gen =
  QCheck.Gen.(
    oneof
      [
        (let* v = small_nat and* h = nat in
         return
           (P.Welcome
              {
                version = v;
                schema_hash = h land 0xffffffff;
                max_payload = P.max_payload;
              }));
        map (fun s -> P.Okay s) string_small;
        (let* a = small_nat and* b = small_nat in
         return (P.Fed { accepted = a; backlog = b }));
        (let* lines = list_size (int_range 0 5) string_small
         and* mark = watermark_gen in
         return (P.Drained { lines; mark }));
        (let* g = string_small and* o = small_nat in
         let* c = nat and* d = nat and* e = nat and* f = nat in
         return
           (P.Digests
              {
                d_gamma = g;
                d_outputs = o;
                d_seq_lanes = (c, d);
                d_out_lanes = (e, f);
              }));
        (let* pause = bool and* b = small_nat in
         return (P.Flow { pause; backlog = b }));
        (let* code = small_nat and* msg = string_small in
         return (P.Err { code; msg }));
      ])

let client_frame_eq a b =
  match (a, b) with
  | P.Feed xs, P.Feed ys ->
      List.length xs = List.length ys && List.for_all2 Tuple.equal xs ys
  | _ -> a = b

let encode_client frame =
  let b = Buffer.create 64 in
  P.write_client b frame;
  Buffer.to_bytes b

let encode_server frame =
  let b = Buffer.create 64 in
  P.write_server b frame;
  Buffer.to_bytes b

let roundtrip_client =
  QCheck.Test.make ~name:"client frames round-trip the wire" ~count:300
    (QCheck.make client_frame_gen) (fun frame ->
      let bytes = encode_client frame in
      let pos = ref 0 in
      match P.read_frame_bytes bytes pos with
      | `Incomplete -> false
      | `Frame (kind, payload) ->
          !pos = Bytes.length bytes
          && client_frame_eq frame (P.decode_client ~tables kind payload))

let roundtrip_server =
  QCheck.Test.make ~name:"server frames round-trip the wire" ~count:300
    (QCheck.make server_frame_gen) (fun frame ->
      let bytes = encode_server frame in
      let pos = ref 0 in
      match P.read_frame_bytes bytes pos with
      | `Incomplete -> false
      | `Frame (kind, payload) ->
          !pos = Bytes.length bytes && frame = P.decode_server kind payload)

(* Mangling never yields a valid frame: truncation reads as Incomplete
   (wait for more bytes), a flipped bit or an oversized length raises
   Frame_error — and nothing crashes. *)
let mangled_frames =
  QCheck.Test.make ~name:"mangled frames are rejected, never decoded"
    ~count:200 (QCheck.make client_frame_gen) (fun frame ->
      let bytes = encode_client frame in
      let n = Bytes.length bytes in
      (* every strict prefix: a valid wait-for-more, never a frame *)
      let prefixes_ok =
        List.for_all
          (fun k ->
            match P.read_frame_bytes (Bytes.sub bytes 0 k) (ref 0) with
            | `Incomplete -> true
            | `Frame _ -> false
            | exception P.Frame_error _ -> true)
          (List.init n Fun.id)
      in
      (* every single-byte corruption: error or starvation, never a
         frame that differs silently *)
      let flips_ok =
        List.for_all
          (fun k ->
            let m = Bytes.copy bytes in
            Bytes.set m k (Char.chr (Char.code (Bytes.get m k) lxor 0x40));
            match P.read_frame_bytes m (ref 0) with
            | `Incomplete -> true
            | `Frame _ -> false
            | exception P.Frame_error _ -> true)
          (List.init n Fun.id)
      in
      prefixes_ok && flips_ok)

let test_oversized_frame () =
  let b = Buffer.create 16 in
  Jstar_persist.Codec.put_u8 b 3;
  Jstar_persist.Codec.put_u32 b (P.max_payload + 1);
  Buffer.add_string b (String.make 16 'x');
  match P.read_frame_bytes (Buffer.to_bytes b) (ref 0) with
  | exception P.Frame_error _ -> ()
  | `Incomplete -> Alcotest.fail "oversized length accepted as incomplete"
  | `Frame _ -> Alcotest.fail "oversized frame decoded"

(* ------------------------------------------------------------------ *)
(* End-to-end: garbage, handshake, admission, flow, eviction *)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let test_garbage_gets_err () =
  with_server (fun server ->
      let port = Serve.Server.port server in
      let fd = raw_connect port in
      let junk = Bytes.init 64 (fun i -> Char.chr (i * 37 mod 251)) in
      ignore (Unix.write fd junk 0 (Bytes.length junk));
      let r = P.reader fd in
      (match P.read_frame r with
      | Some (kind, payload) -> (
          match P.decode_server kind payload with
          | P.Err { code; _ } ->
              Alcotest.(check int) "bad-frame code" P.err_bad_frame code
          | _ -> Alcotest.fail "expected Err for garbage bytes")
      | None -> Alcotest.fail "server closed without an Err frame");
      Unix.close fd;
      (* the server survived: a well-formed client still works *)
      let c = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session c "alive/check");
      ignore (Serve.Client.digest c);
      Serve.Client.close c)

let test_handshake_rejects_schema () =
  with_server (fun server ->
      let port = Serve.Server.port server in
      let fd = raw_connect port in
      P.send_client fd
        (P.Hello { version = P.version; schema_hash = schema_hash lxor 0xff });
      let r = P.reader fd in
      (match P.read_frame r with
      | Some (kind, payload) -> (
          match P.decode_server kind payload with
          | P.Err { code; _ } ->
              Alcotest.(check int) "handshake code" P.err_handshake code
          | _ -> Alcotest.fail "expected Err for schema mismatch")
      | None -> Alcotest.fail "no reply to bad Hello");
      Unix.close fd)

let test_admission_sessions () =
  with_server ~max_sessions:1 (fun server ->
      let port = Serve.Server.port server in
      let a = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session a "adm/a");
      let b = Serve.Client.connect ~port frozen in
      (match Serve.Client.open_session b "adm/b" with
      | exception Serve.Client.Server_error (code, _) ->
          Alcotest.(check int) "capacity code" P.err_capacity code
      | _ -> Alcotest.fail "second session admitted past max_sessions");
      (* the same name is attachable — it is not a new session *)
      ignore (Serve.Client.open_session b "adm/a");
      Serve.Client.close b;
      Serve.Client.close a)

let test_admission_connections () =
  with_server ~max_connections:1 (fun server ->
      let port = Serve.Server.port server in
      let a = Serve.Client.connect ~port frozen in
      (match Serve.Client.connect ~port frozen with
      | exception Serve.Client.Server_error (code, _) ->
          Alcotest.(check int) "capacity code" P.err_capacity code
      | b ->
          Serve.Client.close b;
          Alcotest.fail "second connection admitted past max_connections");
      Serve.Client.close a)

let test_flow_pause () =
  with_server ~feed_quota:8 (fun server ->
      let port = Serve.Server.port server in
      let c = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session c "flow/main");
      (* 17 tuples > quota 8: the server must pause us at least once,
         then accept — the client absorbs the Flow exchange. *)
      ignore (Serve.Client.feed c (Serve.Demo.batch frozen ~sensors:16 ~t:0));
      ignore (Serve.Client.drain c);
      Alcotest.(check bool) "client saw a pause" true (Serve.Client.pauses c >= 1);
      Alcotest.(check bool)
        "server counted it" true
        (Serve.Server.flow_pauses server >= 1);
      Serve.Client.close c)

let test_idle_eviction_and_recovery () =
  with_server ~idle_timeout:0.2 (fun server ->
      let port = Serve.Server.port server in
      let c = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session c "evict/me");
      for t = 0 to 9 do
        ignore (Serve.Client.feed c (Serve.Demo.batch frozen ~sensors:8 ~t))
      done;
      ignore (Serve.Client.drain c);
      let before = Serve.Client.digest c in
      Serve.Client.close c;
      Alcotest.(check int) "session live" 1 (Serve.Server.sessions_open server);
      (* the janitor runs on the acceptor's 1 s tick *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        Serve.Server.sessions_open server > 0
        && Unix.gettimeofday () < deadline
      do
        Thread.delay 0.1
      done;
      Alcotest.(check int) "session evicted" 0
        (Serve.Server.sessions_open server);
      (* reopening recovers the checkpointed state exactly *)
      let c = Serve.Client.connect ~port frozen in
      let status = Serve.Client.open_session c "evict/me" in
      Alcotest.(check bool)
        "reopen restores" true
        (String.length status >= 8 && String.sub status 0 8 = "restored");
      let after = Serve.Client.digest c in
      Serve.Client.close c;
      Alcotest.(check string)
        "digest survives eviction" before.P.d_gamma after.P.d_gamma;
      Alcotest.(check bool)
        "output lanes survive eviction" true
        (before.P.d_out_lanes = after.P.d_out_lanes))

(* ------------------------------------------------------------------ *)
(* Branch -> feed -> merge equals the single-session oracle *)

type fingerprint = { gamma : string; outputs : int; out_lanes : int * int }

let fingerprint_of (d : P.digest_info) =
  { gamma = d.P.d_gamma; outputs = d.d_outputs; out_lanes = d.d_out_lanes }

let fp =
  Alcotest.testable
    (fun ppf f ->
      Format.fprintf ppf "{gamma=%s; outputs=%d; lanes=(%x,%x)}" f.gamma
        f.outputs (fst f.out_lanes) (snd f.out_lanes))
    ( = )

let sensors = 8
let drain_every = 5

let oracle_fingerprint ~engine ~ticks =
  let dir = fresh_root () in
  let d, _ =
    Jstar_persist.Durable.open_ ~fsync:Jstar_persist.Wal.Never ~dir frozen
      engine
  in
  for t = 0 to ticks - 1 do
    Jstar_persist.Durable.feed d (Serve.Demo.batch frozen ~sensors ~t);
    if (t + 1) mod drain_every = 0 then
      ignore (Jstar_persist.Durable.drain d)
  done;
  ignore (Jstar_persist.Durable.drain d);
  let session = Jstar_persist.Durable.session d in
  let st = Engine.session_state ~with_outputs:false session in
  let fp =
    {
      gamma = Engine.gamma_digest session;
      outputs = st.Engine.ss_outputs_count;
      out_lanes = Jstar_persist.Durable.output_lanes d;
    }
  in
  ignore (Jstar_persist.Durable.finish d);
  rm_rf dir;
  fp

let feed_range c ~from ~ticks =
  for t = from to from + ticks - 1 do
    ignore (Serve.Client.feed c (Serve.Demo.batch frozen ~sensors ~t));
    if (t - from + 1) mod drain_every = 0 then ignore (Serve.Client.drain c)
  done;
  ignore (Serve.Client.drain c)

let branch_merge_vs_oracle threads () =
  let engine =
    { (if threads = 1 then Config.default else Config.parallel ~threads ()) with
      Config.digest = true }
  in
  let want = oracle_fingerprint ~engine ~ticks:40 in
  with_server ~engine (fun server ->
      let port = Serve.Server.port server in
      let c = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session c "bm/main");
      feed_range c ~from:0 ~ticks:20;
      ignore (Serve.Client.branch c "bm/side");
      (* the branch diverges with the suffix *)
      let c2 = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session c2 "bm/side");
      feed_range c2 ~from:20 ~ticks:20;
      let side = fingerprint_of (Serve.Client.digest c2) in
      Alcotest.check fp "branch alone = oracle" want side;
      Serve.Client.close c2;
      (* merging the divergence brings main to the same point *)
      ignore (Serve.Client.merge c ~from:"bm/side");
      let merged = fingerprint_of (Serve.Client.digest c) in
      Alcotest.check fp "merge = oracle" want merged;
      (* and the branch is unharmed *)
      let c3 = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session c3 "bm/side");
      Alcotest.check fp "source intact after merge" want
        (fingerprint_of (Serve.Client.digest c3));
      Serve.Client.close c3;
      Serve.Client.close c)

(* A checkpoint empties the source's WAL, so its post-fork divergence
   window is gone: merging afterwards must be refused — never reported
   as success while silently replaying only the post-checkpoint rump. *)
let test_merge_refused_after_checkpoint () =
  with_server (fun server ->
      let port = Serve.Server.port server in
      let c = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session c "ck/main");
      feed_range c ~from:0 ~ticks:10;
      ignore (Serve.Client.branch c "ck/side");
      let c2 = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session c2 "ck/side");
      feed_range c2 ~from:10 ~ticks:10;
      Serve.Client.checkpoint c2;
      Serve.Client.close c2;
      (match Serve.Client.merge c ~from:"ck/side" with
      | exception Serve.Client.Server_error (code, _) ->
          Alcotest.(check int) "truncated window refused" P.err_merge code
      | _ -> Alcotest.fail "merged a checkpoint-truncated divergence window");
      Serve.Client.close c)

let test_merge_conflicts () =
  with_server (fun server ->
      let port = Serve.Server.port server in
      let c = Serve.Client.connect ~port frozen in
      ignore (Serve.Client.open_session c "mc/main");
      (match Serve.Client.merge c ~from:"mc/main" with
      | exception Serve.Client.Server_error (code, _) ->
          Alcotest.(check int) "self-merge refused" P.err_merge code
      | _ -> Alcotest.fail "merged a session into itself");
      match Serve.Client.merge c ~from:"mc/ghost" with
      | exception Serve.Client.Server_error (code, _) ->
          Alcotest.(check int) "unknown source refused" P.err_no_session code;
          Serve.Client.close c
      | _ -> Alcotest.fail "merged from a session that does not exist")

let suite =
  [
    ( "serve.protocol",
      List.map QCheck_alcotest.to_alcotest
        [ roundtrip_client; roundtrip_server; mangled_frames ]
      @ [
          Alcotest.test_case "oversized frame rejected" `Quick
            test_oversized_frame;
        ] );
    ( "serve.server",
      [
        Alcotest.test_case "garbage gets a clean Err frame" `Quick
          test_garbage_gets_err;
        Alcotest.test_case "handshake rejects schema mismatch" `Quick
          test_handshake_rejects_schema;
        Alcotest.test_case "admission: max sessions" `Quick
          test_admission_sessions;
        Alcotest.test_case "admission: max connections" `Quick
          test_admission_connections;
        Alcotest.test_case "flow pause at the feed quota" `Quick
          test_flow_pause;
        Alcotest.test_case "idle eviction, then recovery" `Quick
          test_idle_eviction_and_recovery;
      ] );
    ( "serve.branch-merge",
      [
        Alcotest.test_case "branch+merge = oracle, threads=1" `Quick
          (branch_merge_vs_oracle 1);
        Alcotest.test_case "branch+merge = oracle, threads=2" `Quick
          (branch_merge_vs_oracle 2);
        Alcotest.test_case "branch+merge = oracle, threads=4" `Quick
          (branch_merge_vs_oracle 4);
        Alcotest.test_case "merge conflicts are refused" `Quick
          test_merge_conflicts;
        Alcotest.test_case "merge refused after source checkpoint" `Quick
          test_merge_refused_after_checkpoint;
      ] );
  ]
