(* End-to-end tracing smoke check, run from `dune runtest` via the
   @trace-smoke alias:

   1. a parallel run at [tracing = Spans] must export Chrome trace-event
      JSON that parses, passes the trace-event schema checks (required
      fields, balanced name-matched B/E pairs per track), and contains
      the engine's step / gamma-insert / rule-fire spans plus the
      pool's steal/idle scheduling events;
   2. with [tracing = Off] the instrumentation must be free: two
      interleaved groups of runs must agree to within 3% (plus a small
      absolute slack so a noisy shared container cannot flake the
      suite — the budget this guards is documented in EXPERIMENTS.md). *)

open Jstar_core
open Jstar_obs

let fail fmt = Fmt.kstr (fun m -> Fmt.epr "trace-smoke: %s@." m; exit 1) fmt

(* One wide class: Gen(0) fans out [items] Item tuples, whose rules all
   fire in one parallel Phase B — enough fork/join traffic for the pool
   to steal and park. *)
let items = 20_000

let build () =
  let p = Program.create () in
  let gen =
    Program.table p "Gen"
      ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "Gen" ]
      ()
  in
  let item =
    Program.table p "Item"
      ~columns:Schema.[ int_col "i" ]
      ~orderby:Schema.[ Lit "Item" ]
      ()
  in
  Program.order p [ "Gen"; "Item" ];
  let sink = Atomic.make 0 in
  Program.rule p "fan_out" ~trigger:gen (fun ctx _ ->
      for i = 0 to items - 1 do
        ctx.Rule.put (Tuple.make item [| Value.Int i |])
      done);
  Program.rule p "work" ~trigger:item (fun _ t ->
      let i = Tuple.int t "i" in
      (* a little arithmetic so a task is not pure queue overhead *)
      let acc = ref i in
      for _ = 1 to 50 do
        acc := (!acc * 1103515245) + 12345
      done;
      ignore (Atomic.fetch_and_add sink (!acc land 1)));
  (p, gen)

let run_once config =
  let p, gen = build () in
  let t0 = Unix.gettimeofday () in
  let result =
    Engine.run_program ~init:[ Tuple.make gen [| Value.Int 0 |] ] p config
  in
  (Unix.gettimeofday () -. t0, result)

let () =
  (* -- 1. traced run exports a valid, complete Chrome trace ---------- *)
  (* Batched firing replaces the per-tuple rule-fire spans with
     per-chunk batch-fire spans; the rule-fire mask and sampling checks
     below need a span per firing, so they run with it off. *)
  let spans_config =
    {
      (Config.parallel ~threads:2 ()) with
      Config.tracing = Level.Spans;
      batch_fire = false;
    }
  in
  let _, result = run_once spans_config in
  let buf = Buffer.create (1 lsl 16) in
  Export.chrome_trace buf result.Engine.tracer;
  let json = Buffer.contents buf in
  let summary =
    match Trace_check.validate_string json with
    | Ok s -> s
    | Error e -> fail "trace fails schema validation: %s" e
  in
  let require name =
    if Trace_check.name_count summary name = 0 then
      fail "trace is missing %S events" name
  in
  require "step";
  require "gamma-insert";
  require "rule-fire";
  if
    Trace_check.name_count summary "pool-steal"
    + Trace_check.name_count summary "pool-idle"
    = 0
  then fail "trace has neither pool-steal nor pool-idle events";
  Fmt.pr
    "trace-smoke: trace ok — %d events, %d tracks, %d spans, %d dropped@."
    summary.Trace_check.events summary.Trace_check.tracks
    summary.Trace_check.spans
    (Tracer.dropped result.Engine.tracer);

  (* -- 1b. batched firing traces batch-fire chunk spans --------------- *)
  let batched_spans_config =
    { (Config.parallel ~threads:2 ()) with Config.tracing = Level.Spans }
  in
  let _, batched_result = run_once batched_spans_config in
  let bbuf = Buffer.create (1 lsl 16) in
  Export.chrome_trace bbuf batched_result.Engine.tracer;
  let bsummary =
    match Trace_check.validate_string (Buffer.contents bbuf) with
    | Ok s -> s
    | Error e -> fail "batched trace fails schema validation: %s" e
  in
  if Trace_check.name_count bsummary "batch-fire" = 0 then
    fail "batched run traced no batch-fire spans";
  if Trace_check.name_count bsummary "step" = 0 then
    fail "batched trace lost its step spans";

  (* -- 2. tracing = Off is free -------------------------------------- *)
  let off_config = Config.parallel ~threads:2 () in
  ignore (run_once off_config) (* warm up *);
  let samples = Array.init 10 (fun _ -> fst (run_once off_config)) in
  (* interleaved halves: even indices vs odd, so drift hits both *)
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let group parity =
    median
      (List.filteri (fun i _ -> i land 1 = parity) (Array.to_list samples))
  in
  let a = group 0 and b = group 1 in
  let tolerance = (0.03 *. Float.max a b) +. 0.150 in
  if Float.abs (a -. b) > tolerance then
    fail "Off-tracing run time unstable: %.4fs vs %.4fs (tolerance %.4fs)" a b
      tolerance;
  let spans_t, _ = run_once spans_config in

  (* -- 3. the suppress mask drops rule-fire spans only --------------- *)
  let masked_config =
    { spans_config with Config.trace_suppress = [ "rule-fire" ] }
  in
  let masked_t, masked_result = run_once masked_config in
  let mbuf = Buffer.create (1 lsl 16) in
  Export.chrome_trace mbuf masked_result.Engine.tracer;
  let msummary =
    match Trace_check.validate_string (Buffer.contents mbuf) with
    | Ok s -> s
    | Error e -> fail "masked trace fails schema validation: %s" e
  in
  if Trace_check.name_count msummary "rule-fire" <> 0 then
    fail "suppress mask leaked rule-fire events";
  if Trace_check.name_count msummary "step" = 0 then
    fail "suppress mask dropped step events too";

  (* -- 4. 1-in-N sampling thins unmasked kinds, keeps the schema ----- *)
  let full_fires = Trace_check.name_count summary "rule-fire" in
  let sampled_config = { spans_config with Config.trace_sample = 50 } in
  let sampled_t, sampled_result = run_once sampled_config in
  let sbuf = Buffer.create (1 lsl 16) in
  Export.chrome_trace sbuf sampled_result.Engine.tracer;
  let ssummary =
    match Trace_check.validate_string (Buffer.contents sbuf) with
    | Ok s -> s
    | Error e -> fail "sampled trace fails schema validation: %s" e
  in
  let sampled_fires = Trace_check.name_count ssummary "rule-fire" in
  (* [items] rule fires: 1-in-50 must record far fewer than all of them
     (windows are per domain and per 64-way kind slot, so allow a wide
     margin) but still record some *)
  if sampled_fires = 0 then fail "sampling dropped every rule-fire event";
  if sampled_fires * 10 > full_fires then
    fail "sampling barely thinned rule-fire: %d of %d" sampled_fires
      full_fires;
  if Trace_check.name_count ssummary "step" = 0 then
    fail "sampled trace lost its step spans";
  Fmt.pr
    "trace-smoke: timing ok — Off medians %.4fs / %.4fs (tolerance %.4fs), \
     Spans run %.4fs, Spans-minus-rule-fire run %.4fs, Spans-sampled-50 run \
     %.4fs (%d of %d rule-fire events)@."
    a b tolerance spans_t masked_t sampled_t sampled_fires full_fires
