(* Tests for the query-acceleration layer: secondary indexes
   ({!Index} / {!Store.indexed}), memoized monoid aggregates
   ({!Agg_cache} through [Query.memo_*] and the [Query.count] fast
   path), and the adaptive store advisor — including the determinism
   and zero-cost-when-off guarantees the engine wiring must keep. *)

open Jstar_core

let v_int i = Value.Int i

(* ------------------------------------------------------------------ *)
(* Cross-store equivalence: every store family, the indexed wrapper,
   and mid-stream index promotion must answer prefix queries and [mem]
   identically. *)

let abc_schema () =
  let p = Program.create () in
  Program.table p "T"
    ~columns:Schema.[ int_col "a"; int_col "b"; int_col "c" ]
    ~orderby:Schema.[ Lit "T" ]
    ()

let sorted_prefix_query store prefix =
  let acc = ref [] in
  store.Store.iter_prefix prefix (fun t -> acc := t :: !acc);
  List.sort Tuple.compare !acc

let prop_indexed_store_equivalence =
  QCheck.Test.make ~name:"indexed/hash/ordered stores answer alike" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 0 40)
        (triple (int_range 0 3) (int_range 0 3) (int_range 0 3)))
    (fun triples ->
      let s = abc_schema () in
      let tuples =
        List.map
          (fun (a, b, c) -> Tuple.make s [| v_int a; v_int b; v_int c |])
          triples
      in
      let reference = Store.tree s in
      let promoted_inner = Store.tree s in
      let promoted, ph = Store.indexed s promoted_inner in
      let others =
        [
          Store.skiplist s;
          Store.hash_index ~prefix_len:1 s;
          Store.hash_index ~prefix_len:2 s;
          fst (Store.indexed ~prefix_lens:[ 1 ] s (Store.tree s));
          fst
            (Store.indexed ~prefix_lens:[ 1; 2 ] s
               (Store.hash_index ~prefix_len:2 s));
          promoted;
        ]
      in
      (* First half element-wise; promote an index mid-stream on the
         undeclared wrapper (backfilling what is already there); second
         half through [insert_batch] on a sorted run. *)
      let arr = Array.of_list tuples in
      let n = Array.length arr in
      let half = n / 2 in
      let ok = ref true in
      for i = 0 to half - 1 do
        let r = reference.Store.insert arr.(i) in
        List.iter
          (fun st -> if st.Store.insert arr.(i) <> r then ok := false)
          others
      done;
      ignore (ph.Store.ih_promote 1 : bool);
      if ph.Store.ih_lens () <> [ 1 ] then ok := false;
      let rest = Array.sub arr half (n - half) in
      Array.sort Tuple.compare rest;
      let res_ref = reference.Store.insert_batch rest 0 (Array.length rest) in
      List.iter
        (fun st ->
          if st.Store.insert_batch rest 0 (Array.length rest) <> res_ref then
            ok := false)
        others;
      (* Probe every prefix length over the small value domain. *)
      let prefixes =
        [ [||] ]
        @ List.concat_map
            (fun a ->
              [ [| v_int a |] ]
              @ List.concat_map
                  (fun b ->
                    [ [| v_int a; v_int b |] ]
                    @ List.map
                        (fun c -> [| v_int a; v_int b; v_int c |])
                        [ 0; 1; 2; 3 ])
                  [ 0; 1; 2; 3 ])
            [ 0; 1; 2; 3 ]
      in
      List.iter
        (fun prefix ->
          let expect = sorted_prefix_query reference prefix in
          List.iter
            (fun st ->
              let got = sorted_prefix_query st prefix in
              if
                not
                  (List.length got = List.length expect
                  && List.for_all2 Tuple.equal got expect)
              then ok := false)
            others)
        prefixes;
      List.iter
        (fun t ->
          let r = reference.Store.mem t in
          List.iter (fun st -> if st.Store.mem t <> r then ok := false) others)
        tuples;
      List.iter
        (fun st -> if st.Store.size () <> reference.Store.size () then ok := false)
        others;
      !ok)

let test_indexed_handle () =
  let s = abc_schema () in
  Alcotest.check_raises "declared length out of range"
    (Schema.Schema_error "T: secondary index prefix length 4 out of range")
    (fun () -> ignore (Store.indexed ~prefix_lens:[ 4 ] s (Store.tree s)));
  let store, h = Store.indexed ~prefix_lens:[ 2 ] s (Store.tree s) in
  Alcotest.(check (list int)) "declared" [ 2 ] (h.Store.ih_lens ());
  Alcotest.(check bool) "promote new length" true (h.Store.ih_promote 1);
  Alcotest.(check bool) "existing length refused" false (h.Store.ih_promote 2);
  Alcotest.(check (list int)) "sorted lengths" [ 1; 2 ] (h.Store.ih_lens ());
  (* Promotion backfills: tuples inserted before the index existed are
     still found through it. *)
  Alcotest.(check bool) "insert" true
    (store.Store.insert (Tuple.make s [| v_int 1; v_int 2; v_int 3 |]));
  Alcotest.(check bool) "promote 3 backfills" true (h.Store.ih_promote 3);
  let got = sorted_prefix_query store [| v_int 1; v_int 2; v_int 3 |] in
  Alcotest.(check int) "found via backfilled index" 1 (List.length got)

(* ------------------------------------------------------------------ *)
(* Aggregate-cache maintenance: each Phase-A batch (including dedup
   drops within and across batches) must leave the cached partials
   equal to a forced Gamma scan, for [count] and a memoized sum, at
   every group including absent ones. *)

let groups = 5

let run_agg_maintenance config () =
  let p = Program.create () in
  let data =
    Program.table p "Data"
      ~columns:Schema.[ int_col "g"; int_col "v" ]
      ~orderby:Schema.[ Lit "Data"; Seq "g" ]
      ()
  in
  let sum_memo =
    Query.memo data ~prefix_len:1 ~monoid:Reducer.int_sum ~f:(fun t ->
        Tuple.int t "v")
  in
  Program.rule p "check-and-seed" ~trigger:data (fun ctx t ->
      let g = Tuple.int t "g" in
      for g' = 0 to groups do
        let prefix = [| v_int g' |] in
        let cached = Query.count ctx data ~prefix () in
        (* [~where] disables the fast path: a forced scan of the same
           Gamma the partials must mirror. *)
        let scanned = Query.count ctx data ~prefix ~where:(fun _ -> true) () in
        if cached <> scanned then
          Alcotest.failf "count mismatch at class %d, group %d: %d <> %d" g g'
            cached scanned;
        let csum = Query.memo_reduce ctx sum_memo ~prefix () in
        let ssum =
          Query.reduce ctx data ~prefix ~monoid:Reducer.int_sum
            ~f:(fun t -> Tuple.int t "v")
            ()
        in
        if csum <> ssum then
          Alcotest.failf "sum mismatch at class %d, group %d: %d <> %d" g g'
            csum ssum
      done;
      (* Total count across groups: the prefix-length-0 partial. *)
      let total = Query.count ctx data () in
      let scanned_total = Query.count ctx data ~where:(fun _ -> true) () in
      if total <> scanned_total then
        Alcotest.failf "total mismatch at class %d: %d <> %d" g total
          scanned_total;
      if g + 1 < groups then begin
        (* Seed the next batch: a within-batch duplicate pair, a fresh
           row, and a re-put of an already-stored tuple (cross-batch
           dedup drop) — none of the drops may reach the partials. *)
        ctx.Rule.put (Tuple.make data [| v_int (g + 1); v_int (10 * g) |]);
        ctx.Rule.put (Tuple.make data [| v_int (g + 1); v_int (10 * g) |]);
        ctx.Rule.put (Tuple.make data [| v_int (g + 1); v_int (10 * g + 1) |]);
        ctx.Rule.put t
      end);
  let init =
    [
      Tuple.make data [| v_int 0; v_int 1 |];
      Tuple.make data [| v_int 0; v_int 1 |];
      Tuple.make data [| v_int 0; v_int 2 |];
    ]
  in
  let r = Engine.run_program ~init p config in
  (* 2 distinct init rows (the duplicate dies in Delta) + 2 fresh rows
     seeded per class transition. *)
  Alcotest.(check int)
    "rows stored" (2 + ((groups - 1) * 2))
    r.Engine.tuples_processed

let test_agg_maintenance_seq =
  run_agg_maintenance { Config.default with Config.agg_cache = true }

let test_agg_maintenance_par =
  run_agg_maintenance (Config.parallel ~threads:2 ())

(* memo_min_by breaks key ties by tuple order, so the cached minimum
   matches what an ordered-store scan returns first — independent of
   the schedule that built the partials. *)
let test_memo_min_tiebreak () =
  let p = Program.create () in
  let data =
    Program.table p "Data"
      ~columns:Schema.[ int_col "g"; int_col "v"; int_col "w" ]
      ~orderby:Schema.[ Lit "Data"; Seq "g" ]
      ()
  in
  let min_memo =
    Query.memo_min_by data ~prefix_len:1 ~key:(fun t -> Tuple.int t "w")
  in
  Program.rule p "check" ~trigger:data (fun ctx t ->
      let g = Tuple.int t "g" in
      (match Query.memo_min ctx min_memo ~prefix:[| v_int g |] () with
      | None -> Alcotest.fail "memoized min of a present group"
      | Some m ->
          (* All [w] are equal, so the winner is the tuple-order
             minimum: the smallest [v]. *)
          Alcotest.(check int) "tie broken by tuple order" 0 (Tuple.int m "v"));
      Alcotest.(check bool)
        "absent group is None" true
        (Query.memo_min ctx min_memo ~prefix:[| v_int 99 |] () = None);
      (* The next batch inserts a smaller-in-tuple-order tie: the
         maintained partial must switch to it. *)
      if g = 0 then
        for v = 0 to 3 do
          ctx.Rule.put (Tuple.make data [| v_int 1; v_int (3 - v); v_int 7 |])
        done);
  let init =
    List.map
      (fun v -> Tuple.make data [| v_int 0; v_int v; v_int 7 |])
      [ 2; 0; 1; 3 ]
  in
  ignore
    (Engine.run_program ~init p { Config.default with Config.agg_cache = true })

(* ------------------------------------------------------------------ *)
(* Advisor: outputs must be identical at every thread count with the
   advisor on or off, and the on-runs must actually promote. *)

let metric_int metrics name =
  let rows = Jstar_obs.Metrics.snapshot metrics in
  match List.find_opt (fun r -> r.Jstar_obs.Metrics.name = name) rows with
  | None -> Alcotest.failf "metric %s not registered" name
  | Some r -> (
      match List.assoc "value" r.Jstar_obs.Metrics.fields with
      | Jstar_obs.Metrics.Int n -> n
      | Jstar_obs.Metrics.Float f -> int_of_float f)

let advisor_probes = 48
let advisor_groups = 8

let run_advisor_program ~threads ~advisor () =
  let p = Program.create () in
  let data =
    Program.table p "Data"
      ~columns:Schema.[ int_col "g"; int_col "i" ]
      ~orderby:Schema.[ Lit "Data" ]
      ()
  in
  let probe =
    Program.table p "Probe"
      ~columns:Schema.[ int_col "k" ]
      ~orderby:Schema.[ Lit "Probe"; Seq "k" ]
      ()
  in
  Program.order p [ "Data"; "Probe" ];
  Program.rule p "query" ~trigger:probe (fun ctx t ->
      let k = Tuple.int t "k" in
      let g = k mod advisor_groups in
      (* A length-1 prefix the Hash_index-2 primary cannot index: full
         scan until the advisor promotes a secondary index. *)
      let n = Query.count ctx data ~prefix:[| v_int g |] () in
      let hit =
        Query.fold ctx data ~prefix:[| v_int g |] ~init:0 ~f:(fun acc t ->
            max acc (Tuple.int t "i"))
          ()
      in
      ctx.Rule.println (Printf.sprintf "probe %d group %d count %d max %d" k g n hit);
      if k + 1 < advisor_probes then
        ctx.Rule.put (Tuple.make probe [| v_int (k + 1) |]));
  let init =
    Tuple.make probe [| v_int 0 |]
    :: List.init 64 (fun i ->
           Tuple.make data [| v_int (i mod advisor_groups); v_int i |])
  in
  let base =
    if threads = 1 then Config.default else Config.parallel ~threads ()
  in
  let config =
    {
      base with
      Config.stores = [ ("Data", Store.Hash_index 2) ];
      agg_cache = false;
      advisor =
        (if advisor then
           Some
             {
               Config.adv_warmup = 16;
               adv_min_queries = 8;
               adv_min_size = 16;
               adv_demote_windows = 4;
             }
         else None);
      tracing = Jstar_obs.Level.Counters;
    }
  in
  let r = Engine.run_program ~init p config in
  if advisor then
    Alcotest.(check bool)
      "advisor promoted" true
      (metric_int r.Engine.metrics "advisor.promotions" > 0);
  r.Engine.outputs

let test_advisor_determinism () =
  let reference = run_advisor_program ~threads:1 ~advisor:false () in
  Alcotest.(check int)
    "probe lines" advisor_probes
    (List.length reference);
  List.iter
    (fun (threads, advisor) ->
      let got = run_advisor_program ~threads ~advisor () in
      Alcotest.(check (list string))
        (Printf.sprintf "threads=%d advisor=%b" threads advisor)
        reference got)
    [ (1, true); (2, false); (2, true); (4, false); (4, true) ]

(* ------------------------------------------------------------------ *)
(* Advisor demotion: a promoted index whose traffic goes cold for
   [adv_demote_windows] review windows is dropped again.  Reviews fire
   on global query volume, so the cold phase keeps querying a *second*
   table — the promoted Data index then serves none of the window's
   queries and ages out. *)

(* Reviews are amortised to one per [max 64 (warmup/2)] queries and a
   demotion needs [adv_demote_windows] consecutive cold reviews, so the
   cold phase must span several hundred queries (2 per probe). *)
let demotion_probes = 200
let demotion_hot_until = 24

let run_demotion_program ~threads ~advisor () =
  let p = Program.create () in
  let data =
    Program.table p "Data"
      ~columns:Schema.[ int_col "g"; int_col "i" ]
      ~orderby:Schema.[ Lit "Data" ]
      ()
  in
  let other =
    Program.table p "Other"
      ~columns:Schema.[ int_col "g"; int_col "i" ]
      ~orderby:Schema.[ Lit "Other" ]
      ()
  in
  let probe =
    Program.table p "Probe"
      ~columns:Schema.[ int_col "k" ]
      ~orderby:Schema.[ Lit "Probe"; Seq "k" ]
      ()
  in
  Program.order p [ "Data"; "Other"; "Probe" ];
  Program.rule p "query" ~trigger:probe (fun ctx t ->
      let k = Tuple.int t "k" in
      let g = k mod advisor_groups in
      let target = if k < demotion_hot_until then data else other in
      let n = Query.count ctx target ~prefix:[| v_int g |] () in
      let hit =
        Query.fold ctx target ~prefix:[| v_int g |] ~init:0 ~f:(fun acc t ->
            max acc (Tuple.int t "i"))
          ()
      in
      ctx.Rule.println
        (Printf.sprintf "probe %d group %d count %d max %d" k g n hit);
      if k + 1 < demotion_probes then
        ctx.Rule.put (Tuple.make probe [| v_int (k + 1) |]));
  let init =
    Tuple.make probe [| v_int 0 |]
    :: List.init 64 (fun i ->
           Tuple.make data [| v_int (i mod advisor_groups); v_int i |])
    @ List.init 64 (fun i ->
          Tuple.make other [| v_int (i mod advisor_groups); v_int i |])
  in
  let base =
    if threads = 1 then Config.default else Config.parallel ~threads ()
  in
  let config =
    {
      base with
      Config.stores =
        [ ("Data", Store.Hash_index 2); ("Other", Store.Hash_index 2) ];
      agg_cache = false;
      advisor =
        (if advisor then
           Some
             {
               Config.adv_warmup = 16;
               adv_min_queries = 8;
               adv_min_size = 16;
               adv_demote_windows = 3;
             }
         else None);
      tracing = Jstar_obs.Level.Counters;
    }
  in
  let r = Engine.run_program ~init p config in
  if advisor then begin
    Alcotest.(check bool)
      "advisor promoted before the cold phase" true
      (metric_int r.Engine.metrics "advisor.promotions" > 0);
    Alcotest.(check bool)
      "advisor demoted the cold index" true
      (metric_int r.Engine.metrics "advisor.demotions" > 0)
  end;
  r.Engine.outputs

let test_advisor_demotion () =
  let reference = run_demotion_program ~threads:1 ~advisor:false () in
  Alcotest.(check int) "probe lines" demotion_probes (List.length reference);
  List.iter
    (fun (threads, advisor) ->
      let got = run_demotion_program ~threads ~advisor () in
      Alcotest.(check (list string))
        (Printf.sprintf "demotion run threads=%d advisor=%b" threads advisor)
        reference got)
    [ (1, true); (2, true); (4, true) ]

(* ------------------------------------------------------------------ *)
(* Config validation of the new knobs *)

let test_config_validation () =
  let raises msg cfg =
    match Config.validate cfg with
    | () -> Alcotest.failf "expected Config.Invalid for %s" msg
    | exception Config.Invalid _ -> ()
  in
  raises "empty index list"
    { Config.default with Config.indexes = [ ("T", []) ] };
  raises "non-positive index length"
    { Config.default with Config.indexes = [ ("T", [ 0 ]) ] };
  raises "advisor thresholds"
    {
      Config.default with
      Config.advisor =
        Some
          {
            Config.adv_warmup = -1;
            adv_min_queries = 1;
            adv_min_size = 0;
            adv_demote_windows = 4;
          };
    };
  raises "unknown suppress kind"
    { Config.default with Config.trace_suppress = [ "no-such-kind" ] };
  Config.validate
    {
      Config.default with
      Config.indexes = [ ("T", [ 1; 2 ]) ];
      advisor = Some Config.advisor_default;
      trace_suppress = [ "rule-fire" ];
    }

(* ------------------------------------------------------------------ *)
(* With every acceleration knob off, the put path must not allocate:
   the advisor/cache hooks are one [None] branch each.  Duplicate puts
   of a const-timestamp table walk the whole hot path (stats, timestamp
   memo, Gamma mem probe) and must cost the same minor words as an
   identically-shaped empty loop. *)

let test_put_path_zero_alloc_when_off () =
  let p = Program.create () in
  let data =
    Program.table p "Data"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "A" ]
      ()
  in
  let go =
    Program.table p "Go"
      ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "B" ]
      ()
  in
  Program.order p [ "A"; "B" ];
  let dup = Tuple.make data [| v_int 1; v_int 2 |] in
  let baseline = ref 0.0 and puts = ref 0.0 in
  let minor_delta f =
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  Program.rule p "measure" ~trigger:go (fun ctx _ ->
      baseline :=
        minor_delta (fun () ->
            for _ = 1 to 10_000 do
              ignore (Sys.opaque_identity dup)
            done);
      puts :=
        minor_delta (fun () ->
            for _ = 1 to 10_000 do
              ignore (Sys.opaque_identity dup);
              ctx.Rule.put dup
            done));
  let init = [ dup; Tuple.make go [| v_int 0 |] ] in
  ignore (Engine.run_program ~init p Config.default);
  Alcotest.(check (float 0.0))
    "duplicate put allocates nothing with acceleration off" !baseline !puts

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "query.accel",
      [
        QCheck_alcotest.to_alcotest prop_indexed_store_equivalence;
        Alcotest.test_case "indexed handle contract" `Quick test_indexed_handle;
        Alcotest.test_case "agg cache = forced scan (seq)" `Quick
          test_agg_maintenance_seq;
        Alcotest.test_case "agg cache = forced scan (par)" `Quick
          test_agg_maintenance_par;
        Alcotest.test_case "memo_min tie-break" `Quick test_memo_min_tiebreak;
        Alcotest.test_case "advisor determinism + promotion" `Slow
          test_advisor_determinism;
        Alcotest.test_case "advisor demotion after cold windows" `Slow
          test_advisor_demotion;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "zero-alloc put path when off" `Quick
          test_put_path_zero_alloc_when_off;
      ] );
  ]
