(* The live ops plane (PR 7): Prometheus text-format rendering, the
   HTTP request machinery under the introspection server, the
   continuous profiler's folds, and the non-negotiable: digests stay
   bit-identical with the profiler on, across thread counts. *)

open Jstar_core
open Jstar_obs

let v_int i = Value.Int i

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let has_line body l = List.mem l (lines body)

let test_prom_names () =
  Alcotest.(check string) "dots flatten" "a_b_c" (Prom.sanitize_name "a.b-c");
  Alcotest.(check string) "leading digit guarded" "_1x"
    (Prom.sanitize_name "1x");
  Alcotest.(check string) "colon kept" "a:b" (Prom.sanitize_name "a:b")

let test_prom_label_escaping () =
  Alcotest.(check string) "backslash, quote, newline"
    {|a\\b\"c\nd|}
    (Prom.escape_label "a\\b\"c\nd")

let test_prom_counters_and_labels () =
  let m = Metrics.create () in
  Metrics.register_counter m ~name:"engine.steps" (fun () -> 7);
  Metrics.register_counter m ~name:"table.My Table.puts" (fun () -> 3);
  Metrics.register_counter m ~name:"table.Other.puts" (fun () -> 4);
  let body = Prom.render m in
  Alcotest.(check bool) "flat counter" true
    (has_line body "jstar_engine_steps 7");
  (* table.<T>.<field> families collapse into one family with a label;
     exactly one TYPE line per family. *)
  Alcotest.(check bool) "labelled row" true
    (has_line body "jstar_table_puts{table=\"My Table\"} 3");
  Alcotest.(check bool) "second label" true
    (has_line body "jstar_table_puts{table=\"Other\"} 4");
  let type_lines =
    List.filter
      (fun l -> l = "# TYPE jstar_table_puts counter")
      (lines body)
  in
  Alcotest.(check int) "one TYPE line per family" 1 (List.length type_lines)

let test_prom_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~name:"engine.lat" in
  (* Buckets are powers of two: 1.5 lands in (1,2], 3.0 in (2,4]. *)
  Metrics.observe h 1.5;
  Metrics.observe h 1.5;
  Metrics.observe h 3.0;
  let body = Prom.render m in
  Alcotest.(check bool) "TYPE histogram" true
    (has_line body "# TYPE jstar_engine_lat histogram");
  Alcotest.(check bool) "first bucket cumulative" true
    (has_line body "jstar_engine_lat_bucket{le=\"2\"} 2");
  Alcotest.(check bool) "second bucket cumulative" true
    (has_line body "jstar_engine_lat_bucket{le=\"4\"} 3");
  Alcotest.(check bool) "+Inf equals count" true
    (has_line body "jstar_engine_lat_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "count" true (has_line body "jstar_engine_lat_count 3");
  Alcotest.(check bool) "sum" true (has_line body "jstar_engine_lat_sum 6")

(* Every non-comment line of a real engine registry must be
   "name{labels} value" with a parseable value. *)
let test_prom_engine_registry () =
  let p = Program.create () in
  let t =
    Program.table p "T"
      ~columns:Schema.[ int_col "x" ]
      ~orderby:Schema.[ Lit "T"; Seq "x" ]
      ()
  in
  Program.rule p "next" ~trigger:t (fun ctx tup ->
      let x = Tuple.int tup "x" in
      if x < 50 then ctx.Rule.put (Tuple.make t [| v_int (x + 1) |]));
  let config =
    { (Config.parallel ~threads:2 ()) with Config.tracing = Level.Counters }
  in
  let frozen = Program.freeze p in
  let s = Engine.start frozen config in
  Engine.feed s [ Tuple.make t [| v_int 0 |] ];
  ignore (Engine.drain s);
  let body = Prom.render (Engine.session_metrics s) in
  ignore (Engine.finish s);
  let name_re c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                  || (c >= '0' && c <= '9') || c = '_' || c = ':' in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then begin
        (match String.index_opt line ' ' with
        | None -> Alcotest.failf "no value separator: %s" line
        | Some i ->
            let metric = String.sub line 0 i in
            let value =
              String.sub line (i + 1) (String.length line - i - 1)
            in
            let name =
              match String.index_opt metric '{' with
              | Some j ->
                  Alcotest.(check bool)
                    (Printf.sprintf "labels close: %s" line)
                    true
                    (metric.[String.length metric - 1] = '}');
                  String.sub metric 0 j
              | None -> metric
            in
            String.iter
              (fun c ->
                Alcotest.(check bool)
                  (Printf.sprintf "name alphabet: %s" name)
                  true (name_re c))
              name;
            Alcotest.(check bool)
              (Printf.sprintf "numeric value: %s" line)
              true
              (float_of_string_opt value <> None))
      end)
    (lines body)

(* ------------------------------------------------------------------ *)
(* Httpd request machinery *)

let test_url_decode () =
  Alcotest.(check string) "percent" "a b" (Jstar_ops.Httpd.url_decode "a%20b");
  Alcotest.(check string) "plus" "a b" (Jstar_ops.Httpd.url_decode "a+b");
  Alcotest.(check string) "utf-8 bytes" "caf\xc3\xa9"
    (Jstar_ops.Httpd.url_decode "caf%C3%A9");
  Alcotest.(check string) "malformed passes through" "100%"
    (Jstar_ops.Httpd.url_decode "100%");
  Alcotest.(check string) "bad hex passes through" "%zz"
    (Jstar_ops.Httpd.url_decode "%zz")

let test_parse_request () =
  (match Jstar_ops.Httpd.parse_request "GET /metrics HTTP/1.1" with
  | Some ("GET", "/metrics", [], true) -> ()
  | _ -> Alcotest.fail "plain GET");
  (match
     Jstar_ops.Httpd.parse_request
       "GET /explain?table=Alarm&tuple=1%2C2&k= HTTP/1.0"
   with
  | Some
      ( "GET",
        "/explain",
        [ ("table", "Alarm"); ("tuple", "1,2"); ("k", "") ],
        false ) ->
      ()
  | _ -> Alcotest.fail "query decoding");
  (match Jstar_ops.Httpd.parse_request "POST /control HTTP/1.1" with
  | Some ("POST", "/control", [], true) -> ()
  | _ -> Alcotest.fail "POST accepted");
  (match Jstar_ops.Httpd.parse_request "PUT /metrics HTTP/1.1" with
  | None -> ()
  | Some _ -> Alcotest.fail "PUT rejected");
  (match Jstar_ops.Httpd.parse_request "GET /metrics SPDY/9" with
  | None -> ()
  | Some _ -> Alcotest.fail "unknown protocol rejected");
  match Jstar_ops.Httpd.parse_request "garbage" with
  | None -> ()
  | Some _ -> Alcotest.fail "garbage rejected"

(* ------------------------------------------------------------------ *)
(* Httpd end to end: persistent connections, bodies, strict framing *)

(* Read exactly one HTTP response off [fd] (headers + Content-Length
   body).  [residual] carries bytes of the *next* response that shared
   a read with this one — pipelined replies arrive back to back, so a
   single [recv] can straddle the boundary. *)
let read_response ?(residual = ref "") fd =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf !residual;
  residual := "";
  let chunk = Bytes.create 1024 in
  let header_end () =
    let s = Buffer.contents buf in
    let rec find i =
      if i + 3 >= String.length s then None
      else if
        s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then Some (i + 4)
      else find (i + 1)
    in
    find 0
  in
  let rec read_headers () =
    match header_end () with
    | Some e -> e
    | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Alcotest.fail "connection closed before headers"
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            read_headers ())
  in
  let body_start = read_headers () in
  let raw = Buffer.contents buf in
  let head = String.sub raw 0 body_start in
  let status =
    match String.split_on_char ' ' head with
    | _ :: code :: _ -> int_of_string code
    | _ -> Alcotest.fail "malformed status line"
  in
  let content_length =
    List.fold_left
      (fun acc line ->
        match String.index_opt line ':' with
        | Some i
          when String.lowercase_ascii (String.sub line 0 i) = "content-length"
          ->
            int_of_string
              (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
        | _ -> acc)
      0
      (String.split_on_char '\n' head)
  in
  let rec read_body () =
    if Buffer.length buf < body_start + content_length then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Alcotest.fail "connection closed mid-body"
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          read_body ()
  in
  read_body ();
  let all = Buffer.contents buf in
  let body = String.sub all body_start content_length in
  residual :=
    String.sub all
      (body_start + content_length)
      (String.length all - body_start - content_length);
  let keep_alive =
    not
      (List.exists
         (fun line ->
           String.lowercase_ascii (String.trim line) = "connection: close")
         (String.split_on_char '\n' (String.map (function '\r' -> '\n' | c -> c) head)))
  in
  (status, body, keep_alive)

let with_httpd routes f =
  let h = Jstar_ops.Httpd.start ~port:0 routes in
  Fun.protect
    ~finally:(fun () -> Jstar_ops.Httpd.stop h)
    (fun () ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_loopback, Jstar_ops.Httpd.port h));
          f fd))

let send_str fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let echo_routes =
  [
    ("/ping", fun _ -> Jstar_ops.Httpd.text "pong");
    ( "/echo",
      fun (req : Jstar_ops.Httpd.request) -> Jstar_ops.Httpd.text req.body );
  ]

let test_httpd_keep_alive () =
  with_httpd echo_routes (fun fd ->
      let residual = ref "" in
      (* two requests, one connection *)
      send_str fd "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n";
      let s1, b1, k1 = read_response ~residual fd in
      Alcotest.(check (pair int string)) "first" (200, "pong") (s1, b1);
      Alcotest.(check bool) "kept alive" true k1;
      send_str fd "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n";
      let s2, b2, _ = read_response ~residual fd in
      Alcotest.(check (pair int string)) "second, same socket" (200, "pong")
        (s2, b2);
      (* pipelined pair: both bytes up front, two responses back *)
      send_str fd "GET /ping HTTP/1.1\r\n\r\nGET /ping HTTP/1.1\r\n\r\n";
      let s3, _, _ = read_response ~residual fd in
      let s4, _, _ = read_response ~residual fd in
      Alcotest.(check (pair int int)) "pipelined" (200, 200) (s3, s4))

let test_httpd_post_body () =
  with_httpd echo_routes (fun fd ->
      send_str fd "POST /echo HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
      let s, b, k = read_response fd in
      Alcotest.(check (pair int string)) "echoed" (200, "hello world") (s, b);
      Alcotest.(check bool) "still persistent" true k;
      send_str fd "GET /ping HTTP/1.1\r\n\r\n";
      let s2, _, _ = read_response fd in
      Alcotest.(check int) "connection survives the body" 200 s2)

let test_httpd_strict_framing () =
  (* a request whose framing cannot be trusted: 400 + Connection: close *)
  with_httpd echo_routes (fun fd ->
      send_str fd "POST /echo HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
      let s, _, k = read_response fd in
      Alcotest.(check int) "bad length is a 400" 400 s;
      Alcotest.(check bool) "connection closed" false k);
  with_httpd echo_routes (fun fd ->
      send_str fd "POST /echo HTTP/1.1\r\n\r\n";
      let s, _, k = read_response fd in
      Alcotest.(check int) "POST without length is a 400" 400 s;
      Alcotest.(check bool) "connection closed" false k);
  with_httpd echo_routes (fun fd ->
      send_str fd
        "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
      let s, _, k = read_response fd in
      Alcotest.(check int) "chunked is refused with a 400" 400 s;
      Alcotest.(check bool) "connection closed" false k)

(* ------------------------------------------------------------------ *)
(* Profiler unit behaviour *)

let test_profiler_folds () =
  let p =
    Profiler.create ~rules:[| "a"; "b" |] ~tables:[| "T" |] ~decay:0.5 ()
  in
  (* Two timed firings of rule 0, one of rule 1. *)
  let t0 = Profiler.fire_start p in
  Profiler.fire_stop p ~rule:0 t0;
  let t0 = Profiler.fire_start p in
  Profiler.fire_stop p ~rule:0 t0;
  let t0 = Profiler.fire_start p in
  Profiler.fire_stop p ~rule:1 t0;
  Profiler.step_barrier p ~puts:[| 5 |] ~queries:[| 2 |] ~gamma:[| 4 |] ();
  Alcotest.(check int) "steps" 1 (Profiler.steps p);
  let rules = Profiler.rules p in
  Alcotest.(check int) "rule a fires" 2 rules.(0).Profiler.pr_fires;
  Alcotest.(check int) "rule b fires" 1 rules.(1).Profiler.pr_fires;
  Alcotest.(check bool) "self time nonnegative" true
    (rules.(0).Profiler.pr_self_s >= 0.0);
  let tables = Profiler.tables p in
  Alcotest.(check int) "puts folded" 5 tables.(0).Profiler.pt_puts;
  Alcotest.(check int) "queries folded" 2 tables.(0).Profiler.pt_queries;
  Alcotest.(check int) "gamma size" 4 tables.(0).Profiler.pt_gamma;
  (* Second barrier with no activity decays the EMA towards zero. *)
  let ema1 = tables.(0).Profiler.pt_ema_puts in
  Profiler.step_barrier p ~puts:[| 5 |] ~queries:[| 2 |] ~gamma:[| 4 |] ();
  let ema2 = (Profiler.tables p).(0).Profiler.pt_ema_puts in
  Alcotest.(check bool) "EMA decays" true (ema2 < ema1);
  (* top_rules orders by decayed self time and drops never-fired. *)
  match Profiler.top_rules ~k:5 p with
  | [] -> Alcotest.fail "top_rules empty"
  | rows ->
      Alcotest.(check bool) "only fired rules" true
        (List.for_all (fun r -> r.Profiler.pr_fires > 0) rows)

let test_profiler_sampling_scales () =
  let p =
    Profiler.create ~rules:[| "a" |] ~tables:[||] ~sample:4 ~stripes:1 ()
  in
  for _ = 1 to 100 do
    let t0 = Profiler.fire_start p in
    Profiler.fire_stop p ~rule:0 t0
  done;
  Profiler.step_barrier p ~puts:[||] ~queries:[||] ~gamma:[||] ();
  let r = (Profiler.rules p).(0) in
  (* Every firing is counted even when only 1-in-4 is timed. *)
  Alcotest.(check int) "all fires counted" 100 r.Profiler.pr_fires

let test_profiler_json () =
  let p = Profiler.create ~rules:[| "a" |] ~tables:[| "T" |] () in
  let t0 = Profiler.fire_start p in
  Profiler.fire_stop p ~rule:0 t0;
  Profiler.step_barrier p ~puts:[| 1 |] ~queries:[| 0 |] ~gamma:[| 1 |] ();
  let j = Profiler.to_json p in
  (match Json.member "deterministic" j with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "profile payload must be marked non-deterministic");
  (* The payload round-trips through the serializer/parser. *)
  match Json.of_string (Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "profile JSON does not parse: %s" e

(* ------------------------------------------------------------------ *)
(* Determinism with the profiler on *)

let closure_program () =
  let p = Program.create () in
  let edge =
    Program.table p "Edge"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Edge" ]
      ()
  in
  let path =
    Program.table p "Path"
      ~columns:Schema.[ int_col "a"; int_col "b" ]
      ~orderby:Schema.[ Lit "Path" ]
      ()
  in
  Program.order p [ "Edge"; "Path" ];
  Program.rule p "seed" ~trigger:edge (fun ctx e ->
      ctx.Rule.put (Tuple.make path [| Tuple.get e 0; Tuple.get e 1 |]));
  Program.rule p "close" ~trigger:path
    ~reads:[ Spec.read ~prefix:[ Spec.Field "b" ] "Edge" ]
    (fun ctx t ->
      let x = Tuple.get t 0 and y = Tuple.int t "b" in
      Query.iter ctx edge ~prefix:[| v_int y |] (fun e ->
          ctx.Rule.put (Tuple.make path [| x; Tuple.get e 1 |])));
  Program.output p path (fun t ->
      Printf.sprintf "path %d %d" (Tuple.int t "a") (Tuple.int t "b"));
  let init =
    List.concat_map
      (fun a -> [ Tuple.make edge [| v_int a; v_int ((a + 1) mod 40) |] ])
      (List.init 40 Fun.id)
  in
  (p, init)

let digest_of ~threads ~profile =
  let p, init = closure_program () in
  let config =
    {
      (Config.parallel ~threads ()) with
      Config.digest = true;
      profile;
      tracing = Level.Off;
    }
  in
  let r = Engine.run_program ~init p config in
  match r.Engine.digest with
  | Some d -> (d.Engine.d_gamma, d.Engine.d_classes, d.Engine.d_outputs)
  | None -> Alcotest.fail "digest requested but absent"

let test_digests_with_profiler () =
  let reference = digest_of ~threads:1 ~profile:false in
  List.iter
    (fun threads ->
      Alcotest.(check (triple string string string))
        (Printf.sprintf "threads=%d profile=on" threads)
        reference
        (digest_of ~threads ~profile:true))
    [ 1; 2; 4 ]

let suite =
  [
    ( "ops.prom",
      [
        Alcotest.test_case "metric name sanitization" `Quick test_prom_names;
        Alcotest.test_case "label escaping" `Quick test_prom_label_escaping;
        Alcotest.test_case "counters and table labels" `Quick
          test_prom_counters_and_labels;
        Alcotest.test_case "histogram buckets cumulative, +Inf" `Quick
          test_prom_histogram;
        Alcotest.test_case "engine registry renders valid syntax" `Quick
          test_prom_engine_registry;
      ] );
    ( "ops.httpd",
      [
        Alcotest.test_case "url decoding" `Quick test_url_decode;
        Alcotest.test_case "request-line parsing" `Quick test_parse_request;
        Alcotest.test_case "keep-alive and pipelining" `Quick
          test_httpd_keep_alive;
        Alcotest.test_case "POST bodies on a persistent connection" `Quick
          test_httpd_post_body;
        Alcotest.test_case "strict framing: 400 + close" `Quick
          test_httpd_strict_framing;
      ] );
    ( "ops.profiler",
      [
        Alcotest.test_case "fold and EMA behaviour" `Quick test_profiler_folds;
        Alcotest.test_case "sampling keeps exact fire counts" `Quick
          test_profiler_sampling_scales;
        Alcotest.test_case "json payload" `Quick test_profiler_json;
        Alcotest.test_case "digests identical with profiler on (1/2/4 \
                            threads)" `Quick test_digests_with_profiler;
      ] );
  ]
